// Package ir implements the Reticle intermediate language: a portable,
// instruction-based representation for FPGA programs (Fig. 5a of the paper).
//
// Programs are functions in A-normal form. Every instruction produces one
// typed destination value and reads zero or more variables. Compute
// instructions occupy device resources (LUTs or DSPs) and carry an optional
// resource annotation; wire instructions are area-free.
package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// TypeKind discriminates the three type shapes of the language.
type TypeKind uint8

// The type kinds of Fig. 5: bool, int, and vector-of-int.
const (
	KindBool TypeKind = iota
	KindInt
	KindVector
)

// Type is a Reticle value type: bool, iN, or a vector iN<lanes>.
//
// The zero value is bool. Widths are limited to 64 bits so values fit an
// int64 lane; that covers every type the paper's evaluation exercises.
type Type struct {
	kind  TypeKind
	width uint8 // bit width of a lane; 1 for bool
	lanes uint16
}

// MaxWidth is the largest supported scalar bit width.
const MaxWidth = 64

// Bool returns the boolean type.
func Bool() Type { return Type{kind: KindBool, width: 1, lanes: 1} }

// Int returns the scalar integer type iN.
// It panics if width is outside [1, MaxWidth]; use NewInt to get an error.
func Int(width int) Type {
	t, err := NewInt(width)
	if err != nil {
		panic(err)
	}
	return t
}

// NewInt returns the scalar integer type iN, validating the width.
func NewInt(width int) (Type, error) {
	if width < 1 || width > MaxWidth {
		return Type{}, fmt.Errorf("ir: integer width %d out of range [1,%d]", width, MaxWidth)
	}
	return Type{kind: KindInt, width: uint8(width), lanes: 1}, nil
}

// Vector returns the vector type iN<lanes>.
// It panics on invalid shapes; use NewVector to get an error.
func Vector(width, lanes int) Type {
	t, err := NewVector(width, lanes)
	if err != nil {
		panic(err)
	}
	return t
}

// NewVector returns the vector type iN<lanes>, validating the shape.
func NewVector(width, lanes int) (Type, error) {
	if width < 1 || width > MaxWidth {
		return Type{}, fmt.Errorf("ir: vector lane width %d out of range [1,%d]", width, MaxWidth)
	}
	if lanes < 1 || lanes > 1<<16-1 {
		return Type{}, fmt.Errorf("ir: vector lane count %d out of range", lanes)
	}
	return Type{kind: KindVector, width: uint8(width), lanes: uint16(lanes)}, nil
}

// Kind reports the type's shape.
func (t Type) Kind() TypeKind { return t.kind }

// IsBool reports whether t is bool.
func (t Type) IsBool() bool { return t.kind == KindBool }

// IsInt reports whether t is a scalar integer type.
func (t Type) IsInt() bool { return t.kind == KindInt }

// IsVector reports whether t is a vector type.
func (t Type) IsVector() bool { return t.kind == KindVector }

// Width returns the bit width of one lane (1 for bool).
func (t Type) Width() int { return int(t.width) }

// Lanes returns the number of lanes (1 for scalars and bool).
func (t Type) Lanes() int { return int(t.lanes) }

// Bits returns the total number of bits carried by a value of this type.
func (t Type) Bits() int { return int(t.width) * int(t.lanes) }

// String renders the type in source syntax: "bool", "i8", "i8<4>".
func (t Type) String() string {
	switch t.kind {
	case KindBool:
		return "bool"
	case KindInt:
		return "i" + strconv.Itoa(int(t.width))
	case KindVector:
		return fmt.Sprintf("i%d<%d>", t.width, t.lanes)
	default:
		return fmt.Sprintf("ir.Type(%d)", t.kind)
	}
}

// ParseType parses a type in source syntax ("bool", "i8", "i8<4>").
func ParseType(s string) (Type, error) {
	switch {
	case s == "bool":
		return Bool(), nil
	case strings.HasPrefix(s, "i"):
		rest := s[1:]
		if i := strings.IndexByte(rest, '<'); i >= 0 {
			if !strings.HasSuffix(rest, ">") {
				return Type{}, fmt.Errorf("ir: malformed vector type %q", s)
			}
			w, err := strconv.Atoi(rest[:i])
			if err != nil {
				return Type{}, fmt.Errorf("ir: malformed vector type %q: %v", s, err)
			}
			l, err := strconv.Atoi(rest[i+1 : len(rest)-1])
			if err != nil {
				return Type{}, fmt.Errorf("ir: malformed vector type %q: %v", s, err)
			}
			return NewVector(w, l)
		}
		w, err := strconv.Atoi(rest)
		if err != nil {
			return Type{}, fmt.Errorf("ir: malformed type %q: %v", s, err)
		}
		return NewInt(w)
	default:
		return Type{}, fmt.Errorf("ir: unknown type %q", s)
	}
}

// Lane returns the scalar type of one lane of t: bool for bool, iN otherwise.
func (t Type) Lane() Type {
	if t.kind == KindBool {
		return Bool()
	}
	return Type{kind: KindInt, width: t.width, lanes: 1}
}
