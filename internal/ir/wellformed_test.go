package ir

import (
	"strings"
	"testing"
)

// Figure 12a: ill-formed — t1 feeds itself combinationally.
const fig12a = `
def fig12a(x:bool) -> (t1:i8) {
    t0:i8 = const[4];
    t1:i8 = add(t1, t0) @??;
}
`

// Figure 12b: well-formed — the cycle passes through a reg.
const fig12b = `
def fig12b(x:bool) -> (t3:i8) {
    t0:bool = const[1];
    t1:i8 = const[4];
    t2:i8 = add(t3, t1) @??;
    t3:i8 = reg[0](t2, t0) @??;
}
`

func TestFig12IllFormed(t *testing.T) {
	f, err := Parse(fig12a)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = CheckWellFormed(f)
	if err == nil {
		t.Fatal("Figure 12a accepted")
	}
	if !strings.Contains(err.Error(), "combinational cycle") {
		t.Errorf("error = %v", err)
	}
	if !strings.Contains(err.Error(), "t1") {
		t.Errorf("error does not name the offending instruction: %v", err)
	}
	if WellFormed(f) {
		t.Error("WellFormed = true")
	}
}

func TestFig12WellFormed(t *testing.T) {
	f, err := Parse(fig12b)
	if err != nil {
		t.Fatal(err)
	}
	pure, regs, err := CheckWellFormed(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pure) != 3 || len(regs) != 1 {
		t.Fatalf("pure = %v, regs = %v", pure, regs)
	}
	if f.Body[regs[0]].Op != OpReg {
		t.Errorf("regs[0] is %s", f.Body[regs[0]].Op)
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	src := `
def chain(a:i8, b:i8) -> (t2:i8) {
    t2:i8 = mul(t1, t0) @??;
    t1:i8 = add(t0, b) @??;
    t0:i8 = add(a, b) @??;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pure, _, err := CheckWellFormed(f)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for rank, idx := range pure {
		pos[f.Body[idx].Dest] = rank
	}
	if !(pos["t0"] < pos["t1"] && pos["t1"] < pos["t2"]) {
		t.Errorf("topological order broken: %v", pos)
	}
}

func TestLongCombinationalCycle(t *testing.T) {
	src := `
def loop3(a:i8) -> (t2:i8) {
    t0:i8 = add(t2, a) @??;
    t1:i8 = add(t0, a) @??;
    t2:i8 = add(t1, a) @??;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if WellFormed(f) {
		t.Error("3-node combinational cycle accepted")
	}
}

func TestTwoRegCycle(t *testing.T) {
	// A cycle threading two regs is fine.
	src := `
def swap(en:bool) -> (p:i8, q:i8) {
    p:i8 = reg[1](q, en) @??;
    q:i8 = reg[0](p, en) @??;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !WellFormed(f) {
		t.Error("reg-reg cycle rejected")
	}
}

func TestRegBreaksOnlyItsOwnCycle(t *testing.T) {
	// A reg elsewhere must not excuse a different combinational cycle.
	src := `
def mixed(a:i8, en:bool) -> (r:i8) {
    r:i8 = reg[0](a, en) @??;
    t0:i8 = add(t1, a) @??;
    t1:i8 = add(t0, a) @??;
}
`
	toks, err := Tokens(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewParser(toks).parseFunc()
	if err != nil {
		t.Fatal(err)
	}
	if WellFormed(f) {
		t.Error("combinational cycle accepted because an unrelated reg exists")
	}
}

func TestWellFormedPureDAG(t *testing.T) {
	f, err := Parse(fig6)
	if err != nil {
		t.Fatal(err)
	}
	pure, regs, err := CheckWellFormed(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pure) != 3 || len(regs) != 0 {
		t.Errorf("pure = %v, regs = %v", pure, regs)
	}
}
