package ir

import (
	"strconv"
	"strings"
	"testing"
)

// renamePorts rewrites every input/output port name (and the function
// name) with a salted spelling, consistently across the interface and
// the body. StructuralHash numbers ports positionally, so the result
// must hash equal; CanonicalHash keys the artifact on the interface, so
// it must not.
func renamePorts(f *Func, salt string) *Func {
	ren := map[string]string{}
	n := 0
	fresh := func(name string) string {
		if r, ok := ren[name]; ok {
			return r
		}
		r := "port" + salt + strconv.Itoa(n)
		n++
		ren[name] = r
		return r
	}
	out := f.Clone()
	out.Name = f.Name + "_" + salt
	for i := range out.Inputs {
		out.Inputs[i].Name = fresh(out.Inputs[i].Name)
	}
	for i := range out.Outputs {
		out.Outputs[i].Name = fresh(out.Outputs[i].Name)
	}
	sub := func(name string) string {
		if r, ok := ren[name]; ok {
			return r
		}
		return name
	}
	for i := range out.Body {
		out.Body[i].Dest = sub(out.Body[i].Dest)
		for j := range out.Body[i].Args {
			out.Body[i].Args[j] = sub(out.Body[i].Args[j])
		}
	}
	return out
}

// rewriteConstants bumps the value attributes of every const and reg by
// delta, leaving the lane count (attr arity) unchanged.
func rewriteConstants(f *Func, delta int64) *Func {
	out := f.Clone()
	for i := range out.Body {
		if out.Body[i].Op == OpConst || out.Body[i].Op == OpReg {
			attrs := append([]int64(nil), out.Body[i].Attrs...)
			for k := range attrs {
				attrs[k] += delta
			}
			out.Body[i].Attrs = attrs
		}
	}
	return out
}

const structProg = `
def edit(a:i8, b:i8, en:bool) -> (y:i8) {
    k:i8 = const[7];
    t0:i8 = mul(a, b) @dsp;
    t1:i8 = add(t0, k) @??;
    s:i8 = sll[2](t1);
    y:i8 = reg[0](s, en) @lut;
}`

// TestStructuralHashEditInvariance: the two edits the hint cache exists
// for — constant value tweaks and identifier renames (temporaries,
// ports, the function name) — never move a program out of its hint
// bucket.
func TestStructuralHashEditInvariance(t *testing.T) {
	f := mustParse(t, structProg)
	h := StructuralHash(f)
	if len(h) != 64 {
		t.Fatalf("expected 64 hex chars, got %d", len(h))
	}
	for _, delta := range []int64{1, -7, 100} {
		if got := StructuralHash(rewriteConstants(f, delta)); got != h {
			t.Errorf("const values +%d changed the structural hash", delta)
		}
	}
	for round := 0; round < 4; round++ {
		salt := string(rune('a' + round))
		if got := StructuralHash(alphaRename(f, salt)); got != h {
			t.Errorf("alpha-renamed temporaries changed the structural hash")
		}
		if got := StructuralHash(renamePorts(f, salt)); got != h {
			t.Errorf("renamed ports changed the structural hash")
		}
		if got := StructuralHash(renamePorts(alphaRename(f, salt), salt)); got != h {
			t.Errorf("combined rename changed the structural hash")
		}
	}
	// The same edits DO change the canonical hash (they change the
	// artifact): the two hashes must stay distinct identities.
	if CanonicalHash(renamePorts(f, "x")) == CanonicalHash(f) {
		t.Error("port rename should change the canonical hash")
	}
	if CanonicalHash(rewriteConstants(f, 1)) == CanonicalHash(f) {
		t.Error("const tweak should change the canonical hash")
	}
}

// TestStructuralHashMutations: every structure-changing mutation — op
// swap, width change, edge rewire, lane-count change, structural attrs,
// resource annotation, instruction insertion — lands in a different
// hint bucket, pairwise.
func TestStructuralHashMutations(t *testing.T) {
	base := StructuralHash(mustParse(t, structProg))
	mutations := map[string]string{
		"op-swap":      strings.Replace(structProg, "add(t0, k)", "sub(t0, k)", 1),
		"width":        strings.ReplaceAll(structProg, "i8", "i16"),
		"edge-rewire":  strings.Replace(structProg, "mul(a, b)", "mul(a, a)", 1),
		"arg-order":    strings.Replace(structProg, "add(t0, k)", "add(k, t0)", 1),
		"shift-attr":   strings.Replace(structProg, "sll[2]", "sll[3]", 1),
		"resource":     strings.Replace(structProg, "mul(a, b) @dsp", "mul(a, b) @lut", 1),
		"extra-instr":  strings.Replace(structProg, "y:i8 = reg", "t2:i8 = add(s, k) @??;\n    y:i8 = reg", 1),
		"extra-input":  strings.Replace(structProg, "en:bool)", "en:bool, zz:i8)", 1),
		"output-moved": strings.NewReplacer("(y:i8)", "(s:i8)", "s:i8 = sll", "q:i8 = sll", "reg[0](s, en)", "reg[0](q, en)", "y:i8 = reg", "s:i8 = reg").Replace(structProg),
	}
	seen := map[string]string{base: "base"}
	for label, src := range mutations {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: mutation does not parse: %v\n%s", label, err, src)
		}
		h := StructuralHash(f)
		if h == base {
			t.Errorf("%s: structural mutation did not change the hash", label)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%s: hash collides with %s", label, prev)
		}
		seen[h] = label
	}
	// Constant values are masked down to their attribute *count*, so the
	// count itself must stay structural: a const with more lanes of
	// attributes is a different shape even at the same destination type.
	f := mustParse(t, structProg)
	f.Body[0].Attrs = append(append([]int64(nil), f.Body[0].Attrs...), 7)
	if StructuralHash(f) == base {
		t.Error("const attribute arity did not change the hash")
	}
}

// TestStructuralHashStable: deterministic across calls and clones.
func TestStructuralHashStable(t *testing.T) {
	f := mustParse(t, structProg)
	if StructuralHash(f) != StructuralHash(f.Clone()) {
		t.Error("structural hash differs across clones")
	}
}

// mutateStructure applies one of the guaranteed-structural mutations to
// instruction i of f, returning false when none applies. Every returned
// mutation changes what StructuralHash emits, so the fuzz target may
// assert a hash difference unconditionally.
func mutateStructure(f *Func, i int, pick byte) bool {
	in := &f.Body[i]
	switch pick % 3 {
	case 0: // op swap within arity
		swaps := map[Op]Op{OpAdd: OpSub, OpSub: OpAdd, OpMul: OpAdd, OpAnd: OpOr, OpOr: OpAnd, OpId: OpNot, OpNot: OpId}
		to, ok := swaps[in.Op]
		if !ok {
			return false
		}
		in.Op = to
		return true
	case 1: // width change on the destination type
		in.Type = Vector(in.Type.Width()+1, in.Type.Lanes())
		return true
	default: // edge rewire: point an arg at a different input port
		if len(in.Args) == 0 {
			return false
		}
		// Canonical naming is injective on source names, so swapping an
		// arg for any *different* name changes the emitted byte stream
		// at this instruction unconditionally.
		j := int(pick) % len(in.Args)
		for _, p := range f.Inputs {
			if p.Name != in.Args[j] {
				in.Args[j] = p.Name
				return true
			}
		}
		return false
	}
}

// FuzzStructuralHash drives the two contracts over arbitrary parsed
// programs: constant rewrites and alpha renames are hash-neutral;
// op swaps, width changes, and edge rewires are not. The checked-in
// corpus under testdata/fuzz/FuzzStructuralHash pins the collision
// regressions found while developing the hash (wire-resource bits,
// output/input aliasing, free-name numbering).
func FuzzStructuralHash(f *testing.F) {
	seeds := []string{
		structProg,
		hashMacc,
		`def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }`,
		`def v(a:i8<4>, b:i8<4>) -> (y:i8<4>) { t:i8<4> = mul(a, b) @dsp; y:i8<4> = add(t, a) @??; }`,
		`def w(x:bool) -> (t2:i8) { t0:i8 = const[5]; t1:i8 = sll[1](t0); t2:i8 = add(t0, t1) @??; }`,
		`def m(a:i8, s:bool) -> (y:i8) { t0:i8 = const[3]; y:i8 = mux(s, a, t0) @lut; }`,
		`def sl(a:i8<4>) -> (y:i8) { y:i8 = slice[2](a); }`,
	}
	for i, s := range seeds {
		f.Add(s, int64(i+1), byte(i))
	}
	f.Fuzz(func(t *testing.T, src string, delta int64, pick byte) {
		fn, err := Parse(src)
		if err != nil || len(fn.Body) == 0 {
			return
		}
		h := StructuralHash(fn)
		if h != StructuralHash(fn.Clone()) {
			t.Fatal("structural hash not deterministic")
		}
		// Edit-invariance: constant rewrite and alpha rename.
		if got := StructuralHash(rewriteConstants(fn, delta)); got != h {
			t.Fatalf("const rewrite (+%d) changed the structural hash\n%s", delta, src)
		}
		if got := StructuralHash(renamePorts(alphaRename(fn, "fz"), "fz")); got != h {
			t.Fatalf("alpha rename changed the structural hash\n%s", src)
		}
		// Structure sensitivity: one targeted mutation, when applicable.
		mut := fn.Clone()
		if mutateStructure(mut, int(pick)%len(mut.Body), pick) {
			if StructuralHash(mut) == h {
				t.Fatalf("structural mutation did not change the hash\nbase:\n%s\nmutant:\n%s", fn, mut)
			}
		}
	})
}
