package ir

import (
	"math/rand"
	"strings"
	"testing"
)

const hashMacc = `
def macc(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
}`

func mustParse(t *testing.T, src string) *Func {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// TestCanonicalHashAlphaInvariance: renaming internal temporaries never
// changes the hash — that is the normalization the artifact cache relies
// on to coalesce alpha-equivalent kernels.
func TestCanonicalHashAlphaInvariance(t *testing.T) {
	base := mustParse(t, hashMacc)
	renamed := mustParse(t, strings.NewReplacer(
		"t0", "product", "t1", "accum").Replace(hashMacc))
	if got, want := CanonicalHash(renamed), CanonicalHash(base); got != want {
		t.Errorf("alpha-renamed temporaries changed the hash:\n%s\nvs\n%s", got, want)
	}
}

// TestCanonicalHashMutations: any semantic mutation — opcode, width,
// attribute, argument wiring, resource annotation, interface — changes
// the hash.
func TestCanonicalHashMutations(t *testing.T) {
	base := CanonicalHash(mustParse(t, hashMacc))
	mutations := map[string]string{
		"opcode":       strings.Replace(hashMacc, "add(t0, c)", "sub(t0, c)", 1),
		"width":        strings.ReplaceAll(hashMacc, "i8", "i16"),
		"attr":         strings.Replace(hashMacc, "reg[0]", "reg[1]", 1),
		"args":         strings.Replace(hashMacc, "mul(a, b)", "mul(b, a)", 1),
		"resource":     strings.Replace(hashMacc, "mul(a, b) @??", "mul(a, b) @dsp", 1),
		"input-name":   strings.NewReplacer("a:i8,", "aa:i8,", "(a, b)", "(aa, b)").Replace(hashMacc),
		"extra-input":  strings.Replace(hashMacc, "en:bool)", "en:bool, zz:i8)", 1),
		"output-name":  strings.NewReplacer("(y:i8)", "(z:i8)", "y:i8 =", "z:i8 =").Replace(hashMacc),
		"func-name":    strings.Replace(hashMacc, "def macc", "def macc2", 1),
		"extra-instr":  strings.Replace(hashMacc, "y:i8 = reg", "t2:i8 = add(t1, c) @??;\n    y:i8 = reg", 1),
		"order":        strings.NewReplacer("t0:i8 = mul(a, b) @??;", "t1:i8 = add(t0, c) @??;", "t1:i8 = add(t0, c) @??;", "t0:i8 = mul(a, b) @??;").Replace(hashMacc),
		"vector-shape": strings.NewReplacer("i8", "i8<4>", "bool", "bool").Replace(hashMacc),
	}
	seen := map[string]string{base: "base"}
	for label, src := range mutations {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: mutation does not parse: %v\n%s", label, err, src)
		}
		h := CanonicalHash(f)
		if h == base {
			t.Errorf("%s: mutation did not change the hash", label)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("%s: hash collides with %s", label, prev)
		}
		seen[h] = label
	}
}

// TestCanonicalHashWireResourceIgnored: the resource field on wire
// instructions is meaningless (the printer does not even render it), so
// it must not perturb the hash.
func TestCanonicalHashWireResourceIgnored(t *testing.T) {
	src := `def f(a:i8) -> (y:i8) { t0:i8 = sll[1](a); y:i8 = add(t0, a) @??; }`
	f1 := mustParse(t, src)
	f2 := f1.Clone()
	for i := range f2.Body {
		if f2.Body[i].IsWire() {
			f2.Body[i].Res = ResDsp
		}
	}
	if CanonicalHash(f1) != CanonicalHash(f2) {
		t.Error("wire-instruction resource bits changed the hash")
	}
}

// alphaRename rewrites every internal temporary of f with a fresh,
// order-scrambled name, preserving ports.
func alphaRename(f *Func, salt string) *Func {
	ports := map[string]bool{}
	for _, p := range f.Inputs {
		ports[p.Name] = true
	}
	for _, p := range f.Outputs {
		ports[p.Name] = true
	}
	ren := map[string]string{}
	n := 0
	for _, in := range f.Body {
		if !ports[in.Dest] {
			if _, ok := ren[in.Dest]; !ok {
				ren[in.Dest] = "zz" + salt + "_" + in.Dest + "_" + string(rune('a'+n%26))
				n++
			}
		}
	}
	sub := func(name string) string {
		if r, ok := ren[name]; ok {
			return r
		}
		return name
	}
	out := f.Clone()
	for i := range out.Body {
		out.Body[i].Dest = sub(out.Body[i].Dest)
		for j := range out.Body[i].Args {
			out.Body[i].Args[j] = sub(out.Body[i].Args[j])
		}
	}
	return out
}

// TestCanonicalHashPropertyRandom: for a swarm of structurally varied
// functions, alpha renaming is hash-neutral and a targeted single-field
// mutation is not.
func TestCanonicalHashPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	srcs := []string{
		hashMacc,
		`def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }`,
		`def v(a:i8<4>, b:i8<4>) -> (y:i8<4>) { t:i8<4> = mul(a, b) @dsp; y:i8<4> = add(t, a) @??; }`,
		`def w(x:bool) -> (t2:i8) { t0:i8 = const[5]; t1:i8 = sll[1](t0); t2:i8 = add(t0, t1) @??; }`,
		`def m(a:i8, s:bool) -> (y:i8) { t0:i8 = const[3]; y:i8 = mux(s, a, t0) @lut; }`,
	}
	for _, src := range srcs {
		f := mustParse(t, src)
		h := CanonicalHash(f)
		for round := 0; round < 8; round++ {
			if got := CanonicalHash(alphaRename(f, string(rune('a'+round)))); got != h {
				t.Fatalf("alpha-renamed variant of %s hashes differently", f.Name)
			}
		}
		// Mutate one random instruction attribute-or-type field.
		mut := f.Clone()
		i := rng.Intn(len(mut.Body))
		if len(mut.Body[i].Attrs) > 0 {
			mut.Body[i].Attrs = append([]int64(nil), mut.Body[i].Attrs...)
			mut.Body[i].Attrs[0]++
		} else {
			mut.Body[i].Type = Vector(mut.Body[i].Type.Width(), mut.Body[i].Type.Lanes()+1)
		}
		if CanonicalHash(mut) == h {
			t.Fatalf("mutated variant of %s hashes equal", f.Name)
		}
	}
}

// TestCanonicalHashStable: hashing is deterministic across calls and
// across clones.
func TestCanonicalHashStable(t *testing.T) {
	f := mustParse(t, hashMacc)
	h1, h2, h3 := CanonicalHash(f), CanonicalHash(f), CanonicalHash(f.Clone())
	if h1 != h2 || h1 != h3 {
		t.Errorf("hash not stable: %s %s %s", h1, h2, h3)
	}
	if len(h1) != 64 {
		t.Errorf("expected 64 hex chars, got %d", len(h1))
	}
}
