package ir

import (
	"strings"
	"testing"
)

func mustParseNoCheck(t *testing.T, src string) *Func {
	t.Helper()
	toks, err := Tokens(src)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser(toks)
	f, err := p.parseFunc()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCheckRejects(t *testing.T) {
	bad := []struct {
		name, src, want string
	}{
		{
			"undefined arg",
			`def f(a:i8) -> (y:i8) { y:i8 = add(a, b) @??; }`,
			"undefined",
		},
		{
			"duplicate dest",
			`def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; y:i8 = add(a, b) @??; }`,
			"more than once",
		},
		{
			"dest shadows input",
			`def f(a:i8, b:i8) -> (a:i8) { a:i8 = add(a, b) @??; }`,
			"more than once",
		},
		{
			"undefined output",
			`def f(a:i8, b:i8) -> (z:i8) { y:i8 = add(a, b) @??; }`,
			"never defined",
		},
		{
			"output type mismatch",
			`def f(a:i8, b:i8) -> (y:i16) { y:i8 = add(a, b) @??; }`,
			"declared i16",
		},
		{
			"add type mismatch",
			`def f(a:i8, b:i16) -> (y:i8) { y:i8 = add(a, b) @??; }`,
			"want i8",
		},
		{
			"add bool result",
			`def f(a:bool, b:bool) -> (y:bool) { y:bool = add(a, b) @??; }`,
			"cannot be bool",
		},
		{
			"compare vector",
			`def f(a:i8<2>, b:i8<2>) -> (y:bool) { y:bool = eq(a, b) @??; }`,
			"vectors",
		},
		{
			"compare result not bool",
			`def f(a:i8, b:i8) -> (y:i8) { y:i8 = eq(a, b) @??; }`,
			"must be bool",
		},
		{
			"mux condition",
			`def f(c:i8, a:i8, b:i8) -> (y:i8) { y:i8 = mux(c, a, b) @??; }`,
			"condition must be bool",
		},
		{
			"reg enable",
			`def f(a:i8, en:i8) -> (y:i8) { y:i8 = reg[0](a, en) @??; }`,
			"enable must be bool",
		},
		{
			"reg bad init count",
			`def f(a:i8<4>, en:bool) -> (y:i8<4>) { y:i8<4> = reg[0, 0](a, en) @??; }`,
			"attributes",
		},
		{
			"shift too far",
			`def f(a:i8) -> (y:i8) { y:i8 = sll[8](a); }`,
			"out of range",
		},
		{
			"shift on vector",
			`def f(a:i8<2>) -> (y:i8<2>) { y:i8<2> = sll[1](a); }`,
			"scalar integers",
		},
		{
			"slice bad range",
			`def f(a:i8) -> (y:i4) { y:i4 = slice[9, 6](a); }`,
			"invalid",
		},
		{
			"slice wrong result width",
			`def f(a:i8) -> (y:i4) { y:i4 = slice[7, 0](a); }`,
			"declared",
		},
		{
			"slice lane out of range",
			`def f(a:i8<2>) -> (y:i8) { y:i8 = slice[2](a); }`,
			"out of range",
		},
		{
			"cat width mismatch",
			`def f(a:i8, b:i8) -> (y:i8) { y:i8 = cat(a, b); }`,
			"16 bits",
		},
		{
			"cat lane width mismatch",
			`def f(a:i8<2>, b:i16) -> (y:i8<3>) { y:i8<3> = cat(a, b); }`,
			"lane widths",
		},
		{
			"cat vector into scalar result",
			`def f(a:i8<2>, b:i8) -> (y:i24) { y:i24 = cat(a, b); }`,
			"vector result",
		},
		{
			"cat bool into vector",
			`def f(a:bool, b:bool) -> (y:i1<2>) { y:i1<2> = cat(a, b); }`,
			"bool",
		},
		{
			"wrong arity",
			`def f(a:i8) -> (y:i8) { y:i8 = add(a) @??; }`,
			"takes 2 arguments",
		},
		{
			"mux arity",
			`def f(c:bool, a:i8) -> (y:i8) { y:i8 = mux(c, a) @??; }`,
			"takes 3 arguments",
		},
	}
	for _, tt := range bad {
		f := mustParseNoCheck(t, tt.src)
		err := Check(f)
		if err == nil {
			t.Errorf("%s: Check succeeded", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.want)
		}
	}
}

func TestCheckAccepts(t *testing.T) {
	good := []string{
		`def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }`,
		`def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) { y:i8<4> = mul(a, b) @dsp; }`,
		`def f(a:i8) -> (y:i8) { y:i8 = not(a) @lut; }`,
		`def f(a:i8, b:i8) -> (y:bool) { y:bool = lt(a, b) @??; }`,
		`def f(a:i8, b:i8) -> (y:i16) { y:i16 = cat(a, b); }`,
		`def f(a:bool, b:bool) -> (y:i2) { y:i2 = cat(a, b); }`,
		`def f(a:i8<2>, b:i8<2>) -> (y:i8<4>) { y:i8<4> = cat(a, b); }`,
		`def f(a:i8, b:i8) -> (y:i8<2>) { y:i8<2> = cat(a, b); }`,
		`def f(a:i8<2>, b:i8) -> (y:i8<3>) { y:i8<3> = cat(a, b); }`,
		`def f(a:i8<4>) -> (y:i8) { y:i8 = slice[3](a); }`,
		`def f(a:i8) -> (y:bool) { y:bool = slice[0, 0](a); }`,
		`def f(a:i8<4>, en:bool) -> (y:i8<4>) { y:i8<4> = reg[1, 2, 3, 4](a, en) @dsp; }`,
		`def f(x:bool) -> (y:i8<4>) { y:i8<4> = const[7]; }`,
		`def f(a:bool, b:bool) -> (y:bool) { y:bool = xor(a, b) @lut; }`,
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("rejected valid program: %v\n%s", err, src)
		}
	}
}

// TestCheckAllowsForwardReference ensures textual use-before-def is legal:
// dependencies are by name, and only well-formedness constrains cycles.
func TestCheckAllowsForwardReference(t *testing.T) {
	src := `
def f(en:bool) -> (t3:i8) {
    t1:i8 = const[4];
    t2:i8 = add(t3, t1) @??;
    t3:i8 = reg[0](t2, en) @??;
}
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("forward reference rejected: %v", err)
	}
}
