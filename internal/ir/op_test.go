package ir

import (
	"testing"
)

// TestInstructionSetMatchesPaper pins the instruction set to Table 1 of the
// paper: compute = {arithmetic, bitwise, comparison, control, memory} and
// wire = {shift, misc}.
func TestInstructionSetMatchesPaper(t *testing.T) {
	wantCompute := []string{
		"add", "sub", "mul",
		"not", "and", "or", "xor",
		"eq", "neq", "lt", "gt", "le", "ge",
		"mux",
		"reg",
	}
	wantWire := []string{
		"sll", "srl", "sra",
		"slice", "cat", "id", "const",
	}
	gotCompute := CompOps()
	if len(gotCompute) != len(wantCompute) {
		t.Fatalf("compute ops = %v, want %v", gotCompute, wantCompute)
	}
	for i, op := range gotCompute {
		if op.String() != wantCompute[i] {
			t.Errorf("compute op %d = %s, want %s", i, op, wantCompute[i])
		}
	}
	gotWire := WireOps()
	if len(gotWire) != len(wantWire) {
		t.Fatalf("wire ops = %v, want %v", gotWire, wantWire)
	}
	for i, op := range gotWire {
		if op.String() != wantWire[i] {
			t.Errorf("wire op %d = %s, want %s", i, op, wantWire[i])
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for _, op := range append(CompOps(), WireOps()...) {
		back, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%s): %v", op, err)
		}
		if back != op {
			t.Errorf("ParseOp(%s) = %s", op, back)
		}
	}
	if _, err := ParseOp("frobnicate"); err == nil {
		t.Error("ParseOp of unknown op succeeded")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpReg.IsStateful() {
		t.Error("reg must be stateful")
	}
	for _, op := range append(CompOps(), WireOps()...) {
		if op != OpReg && op.IsStateful() {
			t.Errorf("%s reported stateful", op)
		}
		if op.IsWire() == op.IsCompute() {
			t.Errorf("%s is both or neither wire/compute", op)
		}
	}
	if OpInvalid.IsCompute() || OpInvalid.IsWire() {
		t.Error("invalid op classified")
	}
}

func TestOpArity(t *testing.T) {
	tests := map[Op]int{
		OpConst: 0, OpNot: 1, OpId: 1, OpSll: 1, OpSlice: 1,
		OpAdd: 2, OpReg: 2, OpCat: 2, OpEq: 2,
		OpMux: 3,
	}
	for op, want := range tests {
		if got := op.Arity(); got != want {
			t.Errorf("%s arity = %d, want %d", op, got, want)
		}
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(200).String(); got != "ir.Op(200)" {
		t.Errorf("unknown op String = %q", got)
	}
}
