package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a bit-accurate runtime value: one int64 per lane, each lane
// sign-extended to 64 bits from the type's lane width. Booleans use lane
// width 1 (so true is -1 internally and prints as 1).
//
// Values are immutable by convention: operations return fresh Values.
type Value struct {
	typ   Type
	lanes []int64
}

// ZeroValue returns the all-zero value of type t.
func ZeroValue(t Type) Value {
	return Value{typ: t, lanes: make([]int64, t.Lanes())}
}

// ScalarValue returns a scalar (or bool) value of type t holding v,
// truncated and sign-extended to the type's width.
func ScalarValue(t Type, v int64) Value {
	if t.IsVector() {
		panic("ir: ScalarValue on vector type " + t.String())
	}
	return Value{typ: t, lanes: []int64{signExtend(v, t.Width())}}
}

// BoolValue returns a bool-typed value.
func BoolValue(b bool) Value {
	if b {
		return Value{typ: Bool(), lanes: []int64{signExtend(1, 1)}}
	}
	return Value{typ: Bool(), lanes: []int64{0}}
}

// VectorValue returns a vector value of type t from the given lane values.
func VectorValue(t Type, vs ...int64) Value {
	if len(vs) != t.Lanes() {
		panic(fmt.Sprintf("ir: VectorValue lane count %d != %d for %s", len(vs), t.Lanes(), t))
	}
	lanes := make([]int64, len(vs))
	for i, v := range vs {
		lanes[i] = signExtend(v, t.Width())
	}
	return Value{typ: t, lanes: lanes}
}

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// IsZeroLen reports whether the value is the zero Value (no type attached).
func (v Value) IsZeroLen() bool { return v.lanes == nil }

// Lane returns lane i as a sign-extended int64.
func (v Value) Lane(i int) int64 { return v.lanes[i] }

// Lanes returns a copy of all lane values.
func (v Value) Lanes() []int64 {
	out := make([]int64, len(v.lanes))
	copy(out, v.lanes)
	return out
}

// Scalar returns the single lane of a scalar or bool value.
func (v Value) Scalar() int64 {
	if len(v.lanes) != 1 {
		panic("ir: Scalar on vector value of type " + v.typ.String())
	}
	return v.lanes[0]
}

// Bool interprets the value as a condition: any nonzero bit is true.
func (v Value) Bool() bool {
	for _, l := range v.lanes {
		if l != 0 {
			return true
		}
	}
	return false
}

// Uint returns lane i as an unsigned integer of the lane width.
func (v Value) Uint(i int) uint64 {
	return uint64(v.lanes[i]) & mask(v.typ.Width())
}

// Equal reports whether two values have the same type and lane contents.
func (v Value) Equal(w Value) bool {
	if v.typ != w.typ || len(v.lanes) != len(w.lanes) {
		return false
	}
	for i := range v.lanes {
		if v.lanes[i] != w.lanes[i] {
			return false
		}
	}
	return true
}

// String renders a value: "5", "-3", or "[1, 2, 3, 4]" for vectors;
// bools render as 0/1.
func (v Value) String() string {
	if v.typ.IsBool() {
		if v.Bool() {
			return "1"
		}
		return "0"
	}
	if !v.typ.IsVector() {
		return strconv.FormatInt(v.lanes[0], 10)
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, l := range v.lanes {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatInt(l, 10))
	}
	b.WriteByte(']')
	return b.String()
}

// signExtend truncates v to width bits and sign-extends the result.
func signExtend(v int64, width int) int64 {
	if width >= 64 {
		return v
	}
	shift := uint(64 - width)
	return v << shift >> shift
}

// mask returns a bit mask of the given width.
func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}
