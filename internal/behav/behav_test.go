package behav

import (
	"strings"
	"testing"

	"reticle/internal/ir"
)

func translate(t *testing.T, src string, flavor Flavor) string {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Translate(f, flavor)
	if err != nil {
		t.Fatal(err)
	}
	return m.String()
}

func TestBaseAdd(t *testing.T) {
	v := translate(t, `
def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp; }
`, Base)
	for _, want := range []string{
		"module f(input [7:0] a, input [7:0] b, output [7:0] y);",
		"assign y = a + b;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q:\n%s", want, v)
		}
	}
	// Behavioral code cannot express the resource annotation.
	if strings.Contains(v, "dsp") {
		t.Errorf("base flavor leaked an annotation:\n%s", v)
	}
}

func TestHintAttribute(t *testing.T) {
	v := translate(t, `
def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }
`, Hint)
	if !strings.Contains(v, `(* use_dsp = "yes" *)`) {
		t.Errorf("missing hint attribute:\n%s", v)
	}
}

func TestFlavorString(t *testing.T) {
	if Base.String() != "base" || Hint.String() != "hint" {
		t.Error("flavor names wrong")
	}
}

// TestVectorUnrolls mirrors Figure 3: vector ops become per-lane scalar
// expressions (what a genvar loop elaborates to).
func TestVectorUnrolls(t *testing.T) {
	v := translate(t, `
def f(a:i8<4>, b:i8<4>) -> (y:i8<4>) { y:i8<4> = add(a, b) @dsp; }
`, Hint)
	for _, want := range []string{
		"assign y[7:0] = a[7:0] + b[7:0];",
		"assign y[31:24] = a[31:24] + b[31:24];",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q:\n%s", want, v)
		}
	}
}

func TestRegisterBecomesAlways(t *testing.T) {
	v := translate(t, `
def f(a:i8, en:bool) -> (y:i8) { y:i8 = reg[3](a, en) @??; }
`, Base)
	for _, want := range []string{
		"input clk",
		"reg [7:0] y_q = 8'h3;",
		"assign y = y_q;",
		"always @(posedge clk) begin",
		"if (en) begin",
		"y_q <= a;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q:\n%s", want, v)
		}
	}
}

func TestInternalRegisterKeepsName(t *testing.T) {
	v := translate(t, `
def f(a:i8, en:bool) -> (z:i8) {
    r:i8 = reg[0](a, en) @??;
    z:i8 = add(r, a) @??;
}
`, Base)
	if !strings.Contains(v, "reg [7:0] r = 8'h0;") {
		t.Errorf("internal register mangled:\n%s", v)
	}
	if !strings.Contains(v, "assign z = r + a;") {
		t.Errorf("register read mangled:\n%s", v)
	}
}

func TestSignedComparison(t *testing.T) {
	v := translate(t, `
def f(a:i8, b:i8) -> (y:bool) { y:bool = lt(a, b) @??; }
`, Base)
	if !strings.Contains(v, "assign y = $signed(a) < $signed(b);") {
		t.Errorf("comparison not signed:\n%s", v)
	}
}

func TestMuxTernary(t *testing.T) {
	v := translate(t, `
def f(c:bool, a:i8, b:i8) -> (y:i8) { y:i8 = mux(c, a, b) @lut; }
`, Base)
	if !strings.Contains(v, "assign y = c ? a : b;") {
		t.Errorf("mux form wrong:\n%s", v)
	}
}

func TestWireOps(t *testing.T) {
	v := translate(t, `
def f(a:i8) -> (y:i8, z:i8) {
    t0:i4 = slice[7, 4](a);
    t1:i4 = slice[3, 0](a);
    y:i8 = cat(t0, t1);
    z:i8 = sra[2](a);
}
`, Base)
	for _, want := range []string{
		"assign t0 = a[7:4];",
		"assign y = {t1, t0};",
		"assign z = $signed(a) >>> 2;",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q:\n%s", want, v)
		}
	}
}

func TestFeedbackProgram(t *testing.T) {
	// Figure 12b must translate: register feedback is behavioral bread
	// and butter.
	v := translate(t, `
def fig12b(x:bool) -> (t3:i8) {
    t0:bool = const[1];
    t1:i8 = const[4];
    t2:i8 = add(t3, t1) @??;
    t3:i8 = reg[0](t2, t0) @??;
}
`, Base)
	if !strings.Contains(v, "assign t2 = t3_q + t1;") {
		t.Errorf("feedback read should use the register:\n%s", v)
	}
}

func TestIllFormedRejected(t *testing.T) {
	f, err := ir.Parse(`
def bad(x:bool) -> (t1:i8) {
    t0:i8 = const[4];
    t1:i8 = add(t1, t0) @??;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(f, Base); err == nil {
		t.Error("Translate accepted combinational cycle")
	}
}

func TestVectorRegister(t *testing.T) {
	v := translate(t, `
def f(a:i8<2>, en:bool) -> (y:i8<2>) { y:i8<2> = reg[1, 2](a, en) @dsp; }
`, Base)
	// init = lane0 | lane1<<8 = 0x0201.
	if !strings.Contains(v, "reg [15:0] y_q = 16'h201;") {
		t.Errorf("vector init wrong:\n%s", v)
	}
}
