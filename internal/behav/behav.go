// Package behav implements the baseline translation backends of §7: they
// transform Reticle intermediate programs into code resembling standard
// behavioral Verilog. Two flavors exist:
//
//   - Base: portable behavioral Verilog, no vendor extensions.
//   - Hint: the same code annotated with (* use_dsp = "yes" *), the
//     vendor-specific synthesis directive of Fig. 3.
//
// Resource and placement annotations cannot be expressed behaviorally and
// are dropped — that lossiness is precisely the paper's point. Vector
// operations unroll into per-lane scalar expressions, mirroring the genvar
// loop of Fig. 3.
package behav

import (
	"fmt"

	"reticle/internal/ir"
	"reticle/internal/verilog"
)

// Flavor selects the baseline variant.
type Flavor uint8

// The two §7 baselines.
const (
	Base Flavor = iota
	Hint
)

func (f Flavor) String() string {
	if f == Hint {
		return "hint"
	}
	return "base"
}

// Translate emits a behavioral Verilog module for an IR function.
func Translate(f *ir.Func, flavor Flavor) (*verilog.Module, error) {
	if err := ir.Check(f); err != nil {
		return nil, err
	}
	if _, _, err := ir.CheckWellFormed(f); err != nil {
		return nil, err
	}
	m := &verilog.Module{Name: f.Name}
	if flavor == Hint {
		m.Attrs = []verilog.Attr{{Key: "use_dsp", Value: "yes"}}
	}

	stateful := false
	for _, in := range f.Body {
		if in.Op.IsStateful() {
			stateful = true
		}
	}
	if stateful {
		m.AddPort(verilog.Input, "clk", 1)
	}
	for _, p := range f.Inputs {
		m.AddPort(verilog.Input, p.Name, p.Type.Bits())
	}
	for _, p := range f.Outputs {
		m.AddPort(verilog.Output, p.Name, p.Type.Bits())
	}

	outNames := make(map[string]bool)
	for _, p := range f.Outputs {
		outNames[p.Name] = true
	}
	types := f.InputTypes()
	for _, in := range f.Body {
		types[in.Dest] = in.Type
	}

	// Declarations: regs for stateful destinations, wires otherwise.
	// Outputs defined by registers need a mirror reg plus an assign.
	for _, in := range f.Body {
		if in.Op.IsStateful() {
			regName := in.Dest
			if outNames[in.Dest] {
				regName = in.Dest + "_q"
				m.AddItem(verilog.Assign{LHS: verilog.Ref(in.Dest), RHS: verilog.Ref(regName)})
			}
			m.AddItem(verilog.Reg{
				Name: regName, Width: in.Type.Bits(),
				Init: flattenInit(in), HasInit: true,
			})
			continue
		}
		if !outNames[in.Dest] {
			m.AddItem(verilog.Wire{Name: in.Dest, Width: in.Type.Bits()})
		}
	}

	// regRef renames register reads to the mirror reg where needed.
	regNames := make(map[string]string)
	for _, in := range f.Body {
		if in.Op.IsStateful() && outNames[in.Dest] {
			regNames[in.Dest] = in.Dest + "_q"
		}
	}
	ref := func(name string) verilog.Expr {
		if rn, ok := regNames[name]; ok {
			return verilog.Ref(rn)
		}
		return verilog.Ref(name)
	}

	var ffs []verilog.Stmt
	for _, in := range f.Body {
		if in.Op.IsStateful() {
			lhs := in.Dest
			if rn, ok := regNames[in.Dest]; ok {
				lhs = rn
			}
			ffs = append(ffs, verilog.If{
				Cond: ref(in.Args[1]),
				Then: []verilog.Stmt{
					verilog.NonBlocking{LHS: verilog.Ref(lhs), RHS: ref(in.Args[0])},
				},
			})
			continue
		}
		items, err := assignFor(in, types, ref)
		if err != nil {
			return nil, fmt.Errorf("behav: %s: %w", in.Dest, err)
		}
		m.AddItem(items...)
	}
	if len(ffs) > 0 {
		m.AddItem(verilog.AlwaysFF{Clock: "clk", Stmts: ffs})
	}
	return m, nil
}

// flattenInit packs a register's per-lane initial values into one literal.
func flattenInit(in ir.Instr) int64 {
	w := in.Type.Width()
	var bits int64
	for i := 0; i < in.Type.Lanes(); i++ {
		v := in.Attrs[0]
		if len(in.Attrs) == in.Type.Lanes() {
			v = in.Attrs[i]
		}
		bits |= (v & int64(maskOf(w))) << uint(i*w)
	}
	return bits
}

func maskOf(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// assignFor renders one pure instruction as continuous assignments.
// Vector compute operations unroll into one assignment per lane.
func assignFor(in ir.Instr, types map[string]ir.Type, ref func(string) verilog.Expr) ([]verilog.Item, error) {
	t := in.Type
	if t.IsVector() && in.Op.IsCompute() {
		var items []verilog.Item
		w := t.Width()
		for l := 0; l < t.Lanes(); l++ {
			laneSlice := func(name string) verilog.Expr {
				return verilog.Slice{X: ref(name), Hi: (l+1)*w - 1, Lo: l * w}
			}
			rhs, err := scalarRHS(in, laneSlice, func(name string) verilog.Expr { return ref(name) })
			if err != nil {
				return nil, err
			}
			items = append(items, verilog.Assign{
				LHS: verilog.Slice{X: verilog.Ref(in.Dest), Hi: (l+1)*w - 1, Lo: l * w},
				RHS: rhs,
			})
		}
		return items, nil
	}

	switch in.Op {
	case ir.OpConst, ir.OpId, ir.OpSll, ir.OpSrl, ir.OpSra, ir.OpSlice, ir.OpCat:
		rhs, err := wireRHS(in, types, ref)
		if err != nil {
			return nil, err
		}
		return []verilog.Item{verilog.Assign{LHS: verilog.Ref(in.Dest), RHS: rhs}}, nil
	default:
		rhs, err := scalarRHS(in, func(name string) verilog.Expr { return ref(name) }, ref)
		if err != nil {
			return nil, err
		}
		return []verilog.Item{verilog.Assign{LHS: verilog.Ref(in.Dest), RHS: rhs}}, nil
	}
}

// scalarRHS renders a compute op; lane maps data operands (possibly to a
// lane slice), whole maps scalar-only operands such as mux conditions.
func scalarRHS(in ir.Instr, lane func(string) verilog.Expr, whole func(string) verilog.Expr) (verilog.Expr, error) {
	bin := map[ir.Op]string{
		ir.OpAdd: "+", ir.OpSub: "-", ir.OpMul: "*",
		ir.OpAnd: "&", ir.OpOr: "|", ir.OpXor: "^",
		ir.OpEq: "==", ir.OpNeq: "!=",
		ir.OpLt: "<", ir.OpGt: ">", ir.OpLe: "<=", ir.OpGe: ">=",
	}
	if op, ok := bin[in.Op]; ok {
		lhs, rhs := lane(in.Args[0]), lane(in.Args[1])
		if in.Op == ir.OpLt || in.Op == ir.OpGt || in.Op == ir.OpLe || in.Op == ir.OpGe {
			// Signed comparison semantics.
			lhs = verilog.Unary{Op: "$signed", X: lhs}
			rhs = verilog.Unary{Op: "$signed", X: rhs}
		}
		return verilog.Binary{Op: op, A: lhs, B: rhs}, nil
	}
	switch in.Op {
	case ir.OpNot:
		return verilog.Unary{Op: "~", X: lane(in.Args[0])}, nil
	case ir.OpMux:
		return verilog.Ternary{
			Cond: whole(in.Args[0]),
			Then: lane(in.Args[1]),
			Else: lane(in.Args[2]),
		}, nil
	}
	return nil, fmt.Errorf("behav: no behavioral form for %s", in.Op)
}

// wireRHS renders wire operations, mirroring codegen's structural wiring.
func wireRHS(in ir.Instr, types map[string]ir.Type, ref func(string) verilog.Expr) (verilog.Expr, error) {
	switch in.Op {
	case ir.OpConst:
		return verilog.HexLit(in.Type.Bits(), uint64(flattenInit(in))), nil
	case ir.OpId:
		return ref(in.Args[0]), nil
	case ir.OpSll:
		return verilog.Binary{Op: "<<", A: ref(in.Args[0]), B: verilog.Int(in.Attrs[0])}, nil
	case ir.OpSrl:
		return verilog.Binary{Op: ">>", A: ref(in.Args[0]), B: verilog.Int(in.Attrs[0])}, nil
	case ir.OpSra:
		return verilog.Binary{Op: ">>>",
			A: verilog.Unary{Op: "$signed", X: ref(in.Args[0])}, B: verilog.Int(in.Attrs[0])}, nil
	case ir.OpSlice:
		src := types[in.Args[0]]
		if src.IsVector() {
			l := int(in.Attrs[0])
			w := src.Width()
			return verilog.Slice{X: ref(in.Args[0]), Hi: (l+1)*w - 1, Lo: l * w}, nil
		}
		return verilog.Slice{X: ref(in.Args[0]), Hi: int(in.Attrs[0]), Lo: int(in.Attrs[1])}, nil
	case ir.OpCat:
		return verilog.Concat{Parts: []verilog.Expr{ref(in.Args[1]), ref(in.Args[0])}}, nil
	}
	return nil, fmt.Errorf("behav: not a wire op %s", in.Op)
}
