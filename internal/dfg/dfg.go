// Package dfg builds dataflow graphs from intermediate-language functions
// and partitions them into trees for instruction selection (§5.1 of the
// paper). Nodes are instructions and function inputs; edges are
// definition–use relationships.
//
// The partition cuts the graph at root nodes. A node is a root when its
// value must be materialized: it defines a function output, its fanout
// differs from one, or it is a register (registers both break cycles and
// anchor stateful patterns such as add_reg).
package dfg

import (
	"fmt"

	"reticle/internal/ir"
)

// NodeKind discriminates graph nodes.
type NodeKind uint8

// Node kinds.
const (
	KindInput NodeKind = iota
	KindInstr
)

// Node is one vertex of the dataflow graph.
type Node struct {
	ID    int
	Kind  NodeKind
	Name  string    // variable name: input name or instruction destination
	Type  ir.Type   // value type
	Instr *ir.Instr // nil for inputs; points into the source function's body
	Index int       // body index for instruction nodes, -1 for inputs
	Args  []*Node   // operand nodes, in argument order

	fanout   int  // number of instruction arguments consuming this node
	isOutput bool // defines a function output port
}

// Fanout returns the number of instruction arguments that consume the node.
func (n *Node) Fanout() int { return n.fanout }

// IsOutput reports whether the node defines a function output.
func (n *Node) IsOutput() bool { return n.isOutput }

// IsWire reports whether the node is a wire instruction.
func (n *Node) IsWire() bool { return n.Kind == KindInstr && n.Instr.Op.IsWire() }

// IsReg reports whether the node is a register instruction.
func (n *Node) IsReg() bool { return n.Kind == KindInstr && n.Instr.Op.IsStateful() }

// Graph is the dataflow graph of one function.
type Graph struct {
	Fn     *ir.Func
	Nodes  []*Node // inputs first, then instructions in body order
	byName map[string]*Node
}

// Build constructs the dataflow graph. The function must be well formed;
// Build rejects ill-formed programs (§6.1) so downstream passes can assume
// trees exist.
func Build(f *ir.Func) (*Graph, error) {
	if err := ir.Check(f); err != nil {
		return nil, err
	}
	if _, _, err := ir.CheckWellFormed(f); err != nil {
		return nil, err
	}
	g := &Graph{Fn: f, byName: make(map[string]*Node)}
	for _, p := range f.Inputs {
		n := &Node{ID: len(g.Nodes), Kind: KindInput, Name: p.Name, Type: p.Type, Index: -1}
		g.Nodes = append(g.Nodes, n)
		g.byName[p.Name] = n
	}
	for i := range f.Body {
		in := &f.Body[i]
		n := &Node{ID: len(g.Nodes), Kind: KindInstr, Name: in.Dest, Type: in.Type, Instr: in, Index: i}
		g.Nodes = append(g.Nodes, n)
		g.byName[in.Dest] = n
	}
	for _, n := range g.Nodes {
		if n.Kind != KindInstr {
			continue
		}
		for _, a := range n.Instr.Args {
			arg, ok := g.byName[a]
			if !ok {
				return nil, fmt.Errorf("dfg: %s: argument %q undefined", n.Name, a)
			}
			n.Args = append(n.Args, arg)
			arg.fanout++
		}
	}
	for _, p := range f.Outputs {
		if n, ok := g.byName[p.Name]; ok {
			n.isOutput = true
		}
	}
	return g, nil
}

// Lookup returns the node defining the named variable.
func (g *Graph) Lookup(name string) (*Node, bool) {
	n, ok := g.byName[name]
	return n, ok
}

// IsRoot reports whether the node anchors a selection tree.
func (g *Graph) IsRoot(n *Node) bool {
	if n.Kind != KindInstr {
		return false
	}
	return n.isOutput || n.fanout != 1 || n.IsReg()
}

// Tree is one selection tree: a root instruction node and the set of nodes
// reachable from it without crossing another root or an input.
type Tree struct {
	Root *Node
	// Interior holds every non-root node belonging to this tree, keyed by
	// node ID. Leaves (inputs and other roots) are not included.
	Interior map[int]*Node
}

// Contains reports whether the node is the root or interior to the tree.
func (t *Tree) Contains(n *Node) bool {
	if n == t.Root {
		return true
	}
	_, ok := t.Interior[n.ID]
	return ok
}

// Size returns the number of instruction nodes in the tree.
func (t *Tree) Size() int { return 1 + len(t.Interior) }

// Partition splits the graph into trees, one per root, in body order.
// Every instruction node belongs to exactly one tree.
func (g *Graph) Partition() []*Tree {
	var trees []*Tree
	for _, n := range g.Nodes {
		if !g.IsRoot(n) {
			continue
		}
		t := &Tree{Root: n, Interior: make(map[int]*Node)}
		g.grow(t, n)
		trees = append(trees, t)
	}
	return trees
}

func (g *Graph) grow(t *Tree, n *Node) {
	for _, a := range n.Args {
		if a.Kind != KindInstr || g.IsRoot(a) {
			continue // leaf: input or another tree's root
		}
		if _, seen := t.Interior[a.ID]; seen {
			continue
		}
		t.Interior[a.ID] = a
		g.grow(t, a)
	}
}

// CheckPartition verifies the partition invariant: every instruction node
// appears in exactly one tree. It exists for tests and debugging.
func CheckPartition(g *Graph, trees []*Tree) error {
	seen := make(map[int]int)
	for ti, t := range trees {
		seen[t.Root.ID]++
		for id := range t.Interior {
			seen[id]++
		}
		_ = ti
	}
	for _, n := range g.Nodes {
		if n.Kind != KindInstr {
			continue
		}
		switch seen[n.ID] {
		case 1:
		case 0:
			return fmt.Errorf("dfg: node %s missing from partition", n.Name)
		default:
			return fmt.Errorf("dfg: node %s appears in %d trees", n.Name, seen[n.ID])
		}
	}
	return nil
}
