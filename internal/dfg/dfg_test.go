package dfg

import (
	"testing"

	"reticle/internal/ir"
)

func mustGraph(t *testing.T, src string) *Graph {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildSimple(t *testing.T) {
	g := mustGraph(t, `
def f(a:i8, b:i8, c:i8) -> (t1:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
}
`)
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	t0, _ := g.Lookup("t0")
	t1, _ := g.Lookup("t1")
	a, _ := g.Lookup("a")
	if t0.Fanout() != 1 || a.Fanout() != 1 {
		t.Errorf("fanouts: t0=%d a=%d", t0.Fanout(), a.Fanout())
	}
	if !t1.IsOutput() || t0.IsOutput() {
		t.Error("output marking wrong")
	}
	if g.IsRoot(t0) {
		t.Error("t0 (fanout 1, not output) should not be a root")
	}
	if !g.IsRoot(t1) {
		t.Error("t1 (output) must be a root")
	}
}

func TestPartitionMulAddIsOneTree(t *testing.T) {
	g := mustGraph(t, `
def f(a:i8, b:i8, c:i8) -> (t1:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
}
`)
	trees := g.Partition()
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	if trees[0].Size() != 2 {
		t.Errorf("tree size = %d", trees[0].Size())
	}
	if err := CheckPartition(g, trees); err != nil {
		t.Error(err)
	}
}

func TestPartitionFanoutCut(t *testing.T) {
	// t0 feeds both t1 and t2: it must be its own tree.
	g := mustGraph(t, `
def f(a:i8, b:i8) -> (t1:i8, t2:i8) {
    t0:i8 = add(a, b) @??;
    t1:i8 = mul(t0, a) @??;
    t2:i8 = mul(t0, b) @??;
}
`)
	trees := g.Partition()
	if len(trees) != 3 {
		t.Fatalf("trees = %d, want 3", len(trees))
	}
	for _, tr := range trees {
		if tr.Size() != 1 {
			t.Errorf("tree at %s has size %d", tr.Root.Name, tr.Size())
		}
	}
	if err := CheckPartition(g, trees); err != nil {
		t.Error(err)
	}
}

func TestPartitionRegIsRoot(t *testing.T) {
	g := mustGraph(t, `
def f(a:i8, b:i8, en:bool) -> (y:i8) {
    t0:i8 = add(a, b) @??;
    y:i8 = reg[0](t0, en) @??;
}
`)
	trees := g.Partition()
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	tr := trees[0]
	if !tr.Root.IsReg() {
		t.Error("root is not the reg")
	}
	if tr.Size() != 2 {
		t.Errorf("add_reg tree size = %d, want 2 (reg + add)", tr.Size())
	}
}

func TestPartitionCycleThroughReg(t *testing.T) {
	g := mustGraph(t, `
def fig12b(x:bool) -> (t3:i8) {
    t0:bool = const[1];
    t1:i8 = const[4];
    t2:i8 = add(t3, t1) @??;
    t3:i8 = reg[0](t2, t0) @??;
}
`)
	trees := g.Partition()
	if err := CheckPartition(g, trees); err != nil {
		t.Fatal(err)
	}
	// t3 is a reg root; its tree contains the add (fanout-1) and const t1.
	var regTree *Tree
	for _, tr := range trees {
		if tr.Root.Name == "t3" {
			regTree = tr
		}
	}
	if regTree == nil {
		t.Fatal("no tree rooted at t3")
	}
	t2, _ := g.Lookup("t2")
	if !regTree.Contains(t2) {
		t.Error("t2 not interior to the reg tree")
	}
	// The cycle edge t3 -> t2 terminates at the root boundary, not a loop.
	t3, _ := g.Lookup("t3")
	if regTree.Interior[t3.ID] != nil {
		t.Error("root also interior")
	}
}

func TestBuildRejectsIllFormed(t *testing.T) {
	f, err := ir.Parse(`
def bad(x:bool) -> (t1:i8) {
    t0:i8 = const[4];
    t1:i8 = add(t1, t0) @??;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(f); err == nil {
		t.Error("Build accepted combinational cycle")
	}
}

func TestWireNodesJoinConsumerTree(t *testing.T) {
	g := mustGraph(t, `
def f(a:i8) -> (y:i8) {
    t0:i8 = const[5];
    t1:i8 = sll[1](t0);
    y:i8 = add(t1, a) @??;
}
`)
	trees := g.Partition()
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	if trees[0].Size() != 3 {
		t.Errorf("tree size = %d, want 3", trees[0].Size())
	}
}

func TestSharedWireNodeIsItsOwnTree(t *testing.T) {
	g := mustGraph(t, `
def f(a:i8) -> (y:i8, z:i8) {
    t0:i8 = const[5];
    y:i8 = add(t0, a) @??;
    z:i8 = mul(t0, a) @??;
}
`)
	trees := g.Partition()
	if len(trees) != 3 {
		t.Fatalf("trees = %d, want 3 (const + 2 compute)", len(trees))
	}
	if err := CheckPartition(g, trees); err != nil {
		t.Error(err)
	}
}

func TestOutputWithInternalUseIsRoot(t *testing.T) {
	// y is an output but also feeds t1: it must still be a root.
	g := mustGraph(t, `
def f(a:i8, b:i8) -> (y:i8, t1:i8) {
    y:i8 = add(a, b) @??;
    t1:i8 = mul(y, a) @??;
}
`)
	y, _ := g.Lookup("y")
	if !g.IsRoot(y) {
		t.Error("output with one use not a root")
	}
}

func TestNodePredicates(t *testing.T) {
	g := mustGraph(t, `
def f(a:i8, en:bool) -> (y:i8) {
    t0:i8 = sll[1](a);
    y:i8 = reg[0](t0, en) @??;
}
`)
	t0, _ := g.Lookup("t0")
	y, _ := g.Lookup("y")
	a, _ := g.Lookup("a")
	if !t0.IsWire() || t0.IsReg() {
		t.Error("t0 predicates wrong")
	}
	if y.IsWire() || !y.IsReg() {
		t.Error("y predicates wrong")
	}
	if a.Kind != KindInput || g.IsRoot(a) {
		t.Error("input misclassified")
	}
}
