package server_test

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"reticle"
	"reticle/internal/server"
)

// artifactFiles lists the artifact frames directly under the disk cache
// root — skipping the hints store and the quarantine directory, which
// live in subdirectories.
func artifactFiles(t testing.TB, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// assertSameDesign compares the design-bearing artifact fields — the
// ones a recompute must reproduce exactly — ignoring per-run compile
// timing metadata.
func assertSameDesign(t testing.TB, a, b []byte) {
	t.Helper()
	type design struct {
		Asm     string  `json:"asm"`
		Placed  string  `json:"placed"`
		Verilog string  `json:"verilog"`
		LUTs    int     `json:"luts"`
		DSPs    int     `json:"dsps"`
		FFs     int     `json:"ffs"`
		Fmax    float64 `json:"fmax_mhz"`
	}
	var da, db design
	if err := json.Unmarshal(a, &da); err != nil {
		t.Fatalf("original artifact unreadable: %v", err)
	}
	if err := json.Unmarshal(b, &db); err != nil {
		t.Fatalf("recomputed artifact unreadable: %v", err)
	}
	if da != db {
		t.Fatalf("recomputed design differs from the original\ngot:  %+v\nwant: %+v", db, da)
	}
}

func quarantineCount(t testing.TB, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

// TestDiskCorruptionSelfHeals is the self-healing acceptance test at
// the service level: corrupt a cached artifact on disk (a flipped bit,
// a truncated file — what a torn write or a failing sector leaves
// behind), bring a fresh server up over the directory, and require the
// damage to be invisible to clients: zero 5xx, the entry quarantined
// and transparently recomputed, and the re-served artifact
// byte-identical to the original. Run under -race in CI.
func TestDiskCorruptionSelfHeals(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"bit-flip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			first := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
			var original rawCompileResponse
			if code := post(t, first, "/compile", server.CompileRequest{IR: maccSrc}, &original); code != http.StatusOK {
				t.Fatalf("seed compile: status %d", code)
			}
			files := artifactFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("%d artifact files after one compile, want 1", len(files))
			}
			tc.damage(t, files[0])

			// A fresh server (empty memory LRU) must read the damaged frame,
			// quarantine it, and recompute — the client sees a clean miss.
			healed := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
			var resp rawCompileResponse
			code := post(t, healed, "/compile", server.CompileRequest{IR: maccSrc}, &resp)
			if code >= 500 {
				t.Fatalf("corrupt entry surfaced as %d", code)
			}
			if code != http.StatusOK {
				t.Fatalf("recompute: status %d", code)
			}
			if resp.Cache != "miss" {
				t.Fatalf("recompute served cache %q, want a transparent miss", resp.Cache)
			}
			// The recompute must be semantically identical to the original —
			// same netlist, placement, and Verilog. Full byte-identity only
			// holds for re-served bytes (asserted below): compile timing
			// metadata legitimately differs between pipeline runs.
			assertSameDesign(t, original.Artifact, resp.Artifact)

			var stats server.StatsResponse
			if gcode := get(t, healed, "/stats", &stats); gcode != http.StatusOK {
				t.Fatalf("/stats: %d", gcode)
			}
			if stats.Disk == nil {
				t.Fatal("/stats missing disk section")
			}
			if stats.Disk.Corrupt != 1 || stats.Disk.Quarantined != 1 {
				t.Fatalf("corruption counters %+v, want disk_corrupt=1 disk_quarantined=1", *stats.Disk)
			}
			if n := quarantineCount(t, dir); n != 1 {
				t.Fatalf("%d quarantined files, want 1", n)
			}

			// The recompute was written back: a third cold server serves the
			// kernel as a disk hit, byte-identical to the healed artifact.
			third := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
			var again rawCompileResponse
			if code := post(t, third, "/compile", server.CompileRequest{IR: maccSrc}, &again); code != http.StatusOK {
				t.Fatalf("post-heal compile: status %d", code)
			}
			if again.Cache != "hit" {
				t.Fatalf("post-heal cache %q, want hit", again.Cache)
			}
			if string(again.Artifact) != string(resp.Artifact) {
				t.Fatal("re-served artifact bytes differ from the healed recompute")
			}
		})
	}
}

// TestScrubEndpoint: POST /scrub walks the disk tier, quarantining
// corrupt frames and reporting the walk, without interrupting service.
func TestScrubEndpoint(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	sources := []string{maccSrc, chainSrc("sc1", 2), chainSrc("sc2", 3)}
	for i, src := range sources {
		if code := post(t, s, "/compile", server.CompileRequest{IR: src}, nil); code != http.StatusOK {
			t.Fatalf("seed %d: status %d", i, code)
		}
	}
	files := artifactFiles(t, dir)
	if len(files) != len(sources) {
		t.Fatalf("%d artifact files, want %d", len(files), len(sources))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var rep server.ScrubResponse
	if code := post(t, s, "/scrub", struct{}{}, &rep); code != http.StatusOK {
		t.Fatalf("/scrub: status %d", code)
	}
	if rep.Scanned != len(sources) || rep.Corrupt != 1 {
		t.Fatalf("scrub report %+v, want scanned=%d corrupt=1", rep, len(sources))
	}
	if n := quarantineCount(t, dir); n != 1 {
		t.Fatalf("%d quarantined files after scrub, want 1", n)
	}

	// A server without a disk tier answers 404, not 500.
	nodisk := newTestServer(t, reticle.ServerOptions{})
	if code := post(t, nodisk, "/scrub", struct{}{}, nil); code != http.StatusNotFound {
		t.Fatalf("diskless /scrub: status %d, want 404", code)
	}
}
