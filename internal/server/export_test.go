package server

// SetOnCompileStart installs the test hook invoked as a kernel enters
// the pipeline, letting the drain suite synchronize Shutdown with an
// in-flight compile. Install before traffic, and restore nil after.
func SetOnCompileStart(f func()) { onCompileStart = f }
