package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"reticle"
	"reticle/internal/faults"
	"reticle/internal/rerr"
	"reticle/internal/server"
)

// postWithDeadline posts a /compile with an X-Reticle-Deadline header.
func postWithDeadline(t testing.TB, h http.Handler, body any, header string) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/compile", bytes.NewReader(data))
	if header != "" {
		req.Header.Set(server.DeadlineHeader, header)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestDeadlineHeader pins the cross-tier deadline contract on the
// backend side: a future header compiles normally, an expired one fails
// fast with a typed 504 before any pipeline work, and a malformed one
// is a client error — never silently ignored, never a 500.
func TestDeadlineHeader(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})

	t.Run("future-deadline-compiles", func(t *testing.T) {
		h := strconv.FormatInt(time.Now().Add(30*time.Second).UnixMilli(), 10)
		w := postWithDeadline(t, s, server.CompileRequest{IR: maccSrc}, h)
		if w.Code != http.StatusOK {
			t.Fatalf("future deadline: status %d: %s", w.Code, w.Body.String())
		}
	})

	t.Run("expired-deadline-504", func(t *testing.T) {
		// A distinct kernel: a cache hit is served even on a dead budget
		// (it costs nothing), so only a miss exercises the fail-fast path.
		h := strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10)
		w := postWithDeadline(t, s, server.CompileRequest{IR: chainSrc("dlexp", 2)}, h)
		if w.Code != http.StatusGatewayTimeout {
			t.Fatalf("expired deadline: status %d, want 504: %s", w.Code, w.Body.String())
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Fatal(err)
		}
		if er.ErrorCode != "deadline_exceeded" {
			t.Fatalf("expired deadline error %+v", er)
		}
		// Fail-fast means zero pipeline work: the kernel counter must not
		// move for a request that was dead on arrival.
		var stats server.StatsResponse
		if code := get(t, s, "/stats", &stats); code != http.StatusOK {
			t.Fatalf("/stats: %d", code)
		}
		if stats.Kernels != 1 { // exactly the future-deadline compile above
			t.Fatalf("%d kernels compiled, want 1 — the expired request reached the pipeline", stats.Kernels)
		}
	})

	t.Run("malformed-deadline-400", func(t *testing.T) {
		w := postWithDeadline(t, s, server.CompileRequest{IR: chainSrc("dlmal", 3)}, "half past nine")
		if w.Code != http.StatusBadRequest {
			t.Fatalf("malformed deadline: status %d, want 400: %s", w.Code, w.Body.String())
		}
	})
}

// TestChaosDeadlineFault drives the server/deadline fault point: an
// armed fault makes every budget look exhausted on arrival, and the
// request fails as the same typed 504 a genuinely expired header earns.
func TestChaosDeadlineFault(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		"server/deadline": {Class: rerr.Exhausted, Times: 1},
	})
	w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline fault: status %d, want 504: %s", w.Code, w.Body.String())
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.ErrorCode != "deadline_exceeded" {
		t.Fatalf("deadline fault error %+v", er)
	}
	// The fault plan is spent: the same kernel now compiles.
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, nil); code != http.StatusOK {
		t.Fatalf("post-fault compile: status %d", code)
	}
}
