// Package server is the compile-as-a-service front end: a long-running
// HTTP service exposing the Reticle pipeline over the concurrent batch
// tier (internal/batch) with a content-addressed artifact cache
// (internal/cache) in front.
//
// Endpoints:
//
//	POST /compile  — compile one kernel; cached, singleflighted
//	POST /batch    — compile N kernels through the bounded worker pool
//	GET  /healthz  — liveness: status, uptime, families served
//	GET  /stats    — cache hit rate, in-flight kernels, cumulative
//	                 per-stage wall time, request counters
//
// Robustness contract: request bodies are size-limited (413 past the
// bound), every request carries a deadline that is propagated as a
// context into the pipeline/batch tier (504 on expiry), handler panics
// are isolated to a 500 JSON response (mirroring batch's per-kernel
// recovery), malformed input is a structured 4xx, and Shutdown drains
// in-flight requests before returning. Every response, success or
// failure, is JSON.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"reticle/internal/batch"
	"reticle/internal/cache"
	"reticle/internal/faults"
	"reticle/internal/hintcache"
	"reticle/internal/ir"
	"reticle/internal/pipeline"
	"reticle/internal/rerr"
	"reticle/internal/stagecache"
)

// Fault points in the HTTP tier, for the chaos suite and operational
// drills (activate via RETICLE_FAULTS, e.g. "server/admission=exhausted"
// to force the 429 load-shed path).
var (
	// FaultCompile fires at the top of the /compile handler, after
	// admission.
	FaultCompile = faults.Register("server/compile", "/compile handler entry, after admission")
	// FaultBatch fires at the top of the /batch handler, after admission.
	FaultBatch = faults.Register("server/batch", "/batch handler entry, after admission")
	// FaultExplore fires at the top of the /explore handler, after
	// admission.
	FaultExplore = faults.Register("server/explore", "/explore handler entry, after admission")
	// FaultAdmission forces the admission controller to reject, as if the
	// in-flight limit were reached.
	FaultAdmission = faults.Register("server/admission", "admission control: force a 429 load-shed")
	// FaultDeadline forces deadline derivation to behave as if the
	// cross-tier budget were already exhausted on arrival: a typed 504,
	// never a started compile.
	FaultDeadline = faults.Register("server/deadline", "deadline derivation: budget exhausted on arrival")
)

// DeadlineHeader carries the absolute cross-tier deadline — unix
// milliseconds, UTC — that a routing tier stamped on a proxied request.
// The server folds it into the request context deadline (taking the
// earlier of it and its own timeout), so a 2s budget set at the router
// can never commission 30s of backend work (DESIGN.md §14).
const DeadlineHeader = "X-Reticle-Deadline"

// Options configures a Server.
type Options struct {
	// CacheEntries bounds the artifact LRU; <=0 means cache.DefaultEntries.
	CacheEntries int
	// MaxBodyBytes bounds request bodies; <=0 means 1 MiB.
	MaxBodyBytes int64
	// DefaultTimeout is the per-request compile deadline applied when a
	// request does not set timeout_ms; 0 means no server-side deadline.
	DefaultTimeout time.Duration
	// Jobs bounds /batch worker goroutines when the request omits jobs;
	// <=0 means GOMAXPROCS (the batch tier's default).
	Jobs int
	// DefaultFamily names the config used when a request omits "family".
	// Empty with exactly one configured family means that family.
	DefaultFamily string
	// MaxInFlight bounds concurrently admitted /compile and /batch
	// requests: past the bound, requests are shed immediately with
	// 429 + Retry-After instead of queuing unboundedly. 0 means
	// unlimited.
	MaxInFlight int
	// DiskDir, when non-empty, enables the persistent second-level
	// artifact cache rooted there: checked after the in-memory LRU and
	// before compute, written through on every non-degraded compile, and
	// durable across restarts (see cache.Disk).
	DiskDir string
	// DiskMaxBytes bounds the disk cache; <=0 means cache.DefaultDiskBytes.
	DiskMaxBytes int64
	// HintCacheEntries bounds the placement hint store (anchors of the
	// most recent successful compile per structural key, adopted on an
	// artifact-cache miss with an unchanged placement problem); <=0
	// means cache.DefaultEntries. With DiskDir set, hints also persist
	// under DiskDir/hints and survive restarts.
	HintCacheEntries int
	// NoHintCache disables the placement hint store: every compile
	// solves cold, exactly the pre-hint-cache behavior.
	NoHintCache bool
	// MaxExploreVariants caps the per-request /explore max_variants
	// (requests past the cap are clamped); <=0 means
	// explore.HardMaxVariants.
	MaxExploreVariants int
	// StageCacheEntries bounds the per-stage compilation memo
	// (internal/stagecache — selected assembly, layout-optimized
	// assembly, whole placements, fused codegen+timing output, shared
	// across /compile, /batch, and /explore); <=0 means
	// cache.DefaultEntries. With DiskDir set, stage results also
	// persist under DiskDir/stages and survive restarts.
	StageCacheEntries int
	// NoStageCache disables the stage memo: every artifact-cache miss
	// recomputes all five stages, exactly the pre-stage-cache behavior.
	NoStageCache bool
}

// Server serves compile requests over shared read-only pipeline configs,
// one per family. It implements http.Handler, so tests drive it through
// httptest directly; Start/Shutdown manage a real listener with graceful
// drain.
type Server struct {
	opts    Options
	configs map[string]*pipeline.Config
	cache   *cache.Cache[cachedArtifact]
	texts   *cache.Cache[textEntry]
	disk    *cache.Disk       // persistent second level; nil when disabled
	hints   *hintcache.Store  // placement hint store; nil when disabled
	stagec  *stagecache.Store // per-stage compilation memo; nil when disabled
	mux     *http.ServeMux
	hs      *http.Server
	start   time.Time
	sem     chan struct{} // admission semaphore; nil = unlimited

	requests atomic.Int64 // HTTP requests accepted
	kernels  atomic.Int64 // kernels entering the pipeline (not cache hits)
	inflight atomic.Int64 // kernels currently inside the pipeline
	shed     atomic.Int64 // requests rejected by admission control

	exploreSweeps   atomic.Int64 // /explore sweeps completed
	exploreVariants atomic.Int64 // variants swept, across all sweeps
	exploreHits     atomic.Int64 // variants served from a cache tier
	explorePartial  atomic.Int64 // sweeps that returned partial

	stageSkips atomic.Int64 // pipeline stages served from the stage memo

	stageMu sync.Mutex
	stages  pipeline.StageTimes // cumulative, compiled kernels only
	place   pipeline.PlaceStats // cumulative placement solver counters
}

// onCompileStart, when non-nil, is invoked as a kernel enters the
// pipeline. The drain test uses it to synchronize Shutdown with an
// in-flight request; it must be set before the server receives traffic.
var onCompileStart func()

// cachedArtifact is the cache's unit of storage: the compiled artifact
// plus its wire rendering, marshaled once at insert time so cache hits
// serve pre-encoded bytes instead of re-rendering multi-kilobyte
// Verilog on every request.
type cachedArtifact struct {
	art      *pipeline.Artifact
	rendered json.RawMessage // json.Marshal(artifactJSON(art))
}

// textEntry is the exact-text fast path: a memo from the SHA-256 of
// (family, raw IR text) to the canonical cache key and the kernel's
// default name. Identical source text parses to an identical function,
// so a memo hit may serve the resident artifact without lexing a byte
// of IR; any miss (including an artifact evicted out from under the
// memo) falls through to the parse + canonical-key slow path, which
// still coalesces alpha-equivalent kernels.
type textEntry struct {
	key  cache.Key
	name string // parsed function name, the default response name
}

// textKey hashes a request's exact source text under its family.
func textKey(family, src string) cache.Key {
	h := sha256.New()
	h.Write([]byte(family))
	h.Write([]byte{0})
	h.Write([]byte(src))
	return cache.Key(hex.EncodeToString(h.Sum(nil)))
}

// render builds a cachedArtifact, marshaling the wire form eagerly.
func render(art *pipeline.Artifact) cachedArtifact {
	raw, err := json.Marshal(artifactJSON(art))
	if err != nil {
		// ArtifactJSON is strings and numbers; Marshal cannot fail.
		panic(fmt.Sprintf("server: marshal artifact: %v", err))
	}
	return cachedArtifact{art: art, rendered: raw}
}

// New builds a Server over one pipeline config per family name. Every
// config must validate; at least one family is required.
func New(opts Options, configs map[string]*pipeline.Config) (*Server, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("server: no pipeline configs")
	}
	for name, cfg := range configs {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("server: family %q: %w", name, err)
		}
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 1 << 20
	}
	if opts.DefaultFamily == "" && len(configs) == 1 {
		for name := range configs {
			opts.DefaultFamily = name
		}
	}
	if opts.DefaultFamily != "" {
		if _, ok := configs[opts.DefaultFamily]; !ok {
			return nil, fmt.Errorf("server: default family %q has no config", opts.DefaultFamily)
		}
	}
	s := &Server{
		opts:    opts,
		configs: configs,
		cache:   cache.New[cachedArtifact](opts.CacheEntries),
		texts:   cache.New[textEntry](opts.CacheEntries),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	if opts.MaxInFlight > 0 {
		s.sem = make(chan struct{}, opts.MaxInFlight)
	}
	if opts.DiskDir != "" {
		disk, err := cache.OpenDisk(opts.DiskDir, opts.DiskMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("server: disk cache: %w", err)
		}
		s.disk = disk
	}
	if !opts.NoHintCache {
		s.hints = hintcache.New(opts.HintCacheEntries)
		if opts.DiskDir != "" {
			// Hints live in a subdirectory of the artifact disk root:
			// OpenDisk skips directories when indexing, so the stores
			// share one -disk tree without colliding.
			if err := s.hints.AttachDisk(filepath.Join(opts.DiskDir, "hints"), opts.DiskMaxBytes); err != nil {
				return nil, fmt.Errorf("server: hint cache disk: %w", err)
			}
		}
	}
	if !opts.NoStageCache {
		s.stagec = stagecache.New(opts.StageCacheEntries)
		if opts.DiskDir != "" {
			// Stage results live under DIR/stages, beside DIR/hints.
			if err := s.stagec.AttachDisk(filepath.Join(opts.DiskDir, "stages"), opts.DiskMaxBytes); err != nil {
				return nil, fmt.Errorf("server: stage cache disk: %w", err)
			}
		}
	}
	if s.hints != nil || s.stagec != nil {
		// Both memos ride inside the pipeline config, so clone each
		// family config rather than mutate the caller's. Fingerprint
		// ignores HintCache and StageCache (adoption cannot change
		// output), so every artifact cache key is identical with or
		// without them — and one shared store per server means /explore
		// variants and /batch kernels fork off each other's stages.
		wired := make(map[string]*pipeline.Config, len(configs))
		for name, cfg := range configs {
			cc := *cfg
			if s.hints != nil {
				cc.HintCache = s.hints
			}
			if s.stagec != nil {
				cc.StageCache = s.stagec
			}
			wired[name] = &cc
		}
		s.configs = wired
	}
	s.mux.HandleFunc("POST /compile", s.recovered(s.handleCompile))
	s.mux.HandleFunc("POST /batch", s.recovered(s.handleBatch))
	s.mux.HandleFunc("POST /explore", s.recovered(s.handleExplore))
	s.mux.HandleFunc("POST /scrub", s.recovered(s.handleScrub))
	s.mux.HandleFunc("GET /healthz", s.recovered(s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.recovered(s.handleStats))
	return s, nil
}

// ServeHTTP dispatches to the service mux (so a Server can be mounted
// under httptest or a parent mux directly).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Start listens on addr (":0" picks a free port) and serves in the
// background. The bound address is returned so callers can dial it.
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.hs = &http.Server{Handler: s}
	go s.hs.Serve(l)
	return l.Addr(), nil
}

// ListenAndServe serves on addr until Shutdown; it blocks like
// http.Server.ListenAndServe and returns http.ErrServerClosed after a
// graceful shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.hs = &http.Server{Addr: addr, Handler: s}
	return s.hs.ListenAndServe()
}

// Shutdown gracefully drains the server: listeners close immediately,
// in-flight requests run to completion (bounded by ctx), then Shutdown
// returns. Safe to call when the server was never started.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hs == nil {
		return nil
	}
	return s.hs.Shutdown(ctx)
}

// Families lists the configured family names, sorted.
func (s *Server) Families() []string {
	out := make([]string, 0, len(s.configs))
	for name := range s.configs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CacheStats snapshots the artifact cache counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// Disk exposes the persistent second-level cache (nil when disabled);
// the crash-restart suite and the stats endpoint read it.
func (s *Server) Disk() *cache.Disk { return s.disk }

// Hints exposes the placement hint store (nil when disabled); the
// edit-replay and crash-restart suites read it.
func (s *Server) Hints() *hintcache.Store { return s.hints }

// StageCache exposes the per-stage compilation memo (nil when
// disabled); the memoization and crash-restart suites read it.
func (s *Server) StageCache() *stagecache.Store { return s.stagec }

// ScrubDisk runs one integrity walk over the persistent disk cache at
// the given I/O rate (<=0 means the cache default). It reports ok=false
// without walking when the server runs with no disk tier. The
// -scrub-on-start flag and the POST /scrub endpoint both land here.
func (s *Server) ScrubDisk(ctx context.Context, bytesPerSec int64) (cache.ScrubReport, bool, error) {
	if s.disk == nil {
		return cache.ScrubReport{}, false, nil
	}
	rep, err := s.disk.Scrub(ctx, bytesPerSec)
	return rep, true, err
}

// handleScrub triggers a synchronous disk-cache integrity walk: 404
// when no disk tier is configured, otherwise the walk's report. Corrupt
// entries found are quarantined exactly as a corrupt Get would.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	rep, ok, err := s.ScrubDisk(r.Context(), 0)
	if !ok {
		writeError(w, http.StatusNotFound, "no disk cache configured")
		return
	}
	if err != nil {
		writeTypedError(w, rerr.Wrap(rerr.Transient, "scrub_cancelled",
			"scrub walk cancelled before completion", err))
		return
	}
	writeJSON(w, http.StatusOK, ScrubResponse{
		Scanned: rep.Scanned, Corrupt: rep.Corrupt,
		Bytes: rep.Bytes, ElapsedMS: rep.Elapsed.Milliseconds(),
	})
}

// diskGet reads the second-level cache, if enabled. A read failure
// (including an injected cache/disk-read fault) is already degraded to a
// miss inside cache.Disk.
func (s *Server) diskGet(ctx context.Context, key cache.Key) (json.RawMessage, bool) {
	if s.disk == nil {
		return nil, false
	}
	return s.disk.Get(ctx, key)
}

// diskPut persists a rendered artifact, if the second level is enabled.
// Write failures (including injected cache/disk-write faults) are
// counted inside cache.Disk and never fail the compile that produced
// the artifact.
func (s *Server) diskPut(ctx context.Context, key cache.Key, rendered json.RawMessage) {
	if s.disk == nil {
		return
	}
	_ = s.disk.Put(ctx, key, rendered)
}

// recovered wraps a handler with panic isolation: a panic becomes a 500
// JSON error response instead of a dead connection, the same "one bad
// kernel never takes down the process" semantics the batch tier gives
// each worker. The body carries only the stable typed message — the
// panic value and stack stay in the process, never on the wire.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeTypedError(w, rerr.Wrap(rerr.Permanent, "internal_panic",
					"internal panic while handling the request",
					fmt.Errorf("panic: %v", rec)))
			}
		}()
		h(w, r)
	}
}

// admit applies admission control: a non-blocking semaphore acquire that
// sheds load past Options.MaxInFlight with a typed resource-exhausted
// error (429 + Retry-After on the wire) instead of queuing unboundedly.
// The returned release must be called when the request finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if ferr := FaultAdmission.Fire(ctx); ferr != nil {
		s.shed.Add(1)
		return nil, rerr.Wrap(rerr.Exhausted, "admission_rejected",
			"server at capacity, retry later", ferr)
	}
	if s.sem == nil {
		return func() {}, nil
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
		s.shed.Add(1)
		return nil, rerr.New(rerr.Exhausted, "admission_rejected",
			"server at capacity, retry later")
	}
}

// family resolves a request's family name to its config.
func (s *Server) family(name string) (string, *pipeline.Config, error) {
	if name == "" {
		name = s.opts.DefaultFamily
	}
	if name == "" {
		return "", nil, fmt.Errorf("no family requested and no default configured (have %v)", s.Families())
	}
	cfg, ok := s.configs[name]
	if !ok {
		return "", nil, fmt.Errorf("unknown family %q (have %v)", name, s.Families())
	}
	return name, cfg, nil
}

// deadline derives the compile context for a request: the request's own
// timeout_ms if positive, else the server default — and, when a routing
// tier stamped an X-Reticle-Deadline header, never later than that, so
// the cross-tier budget binds whichever is tighter. Always nested
// inside the connection context so client disconnects cancel compiles.
// A header deadline already in the past fails fast with a typed 504
// before any work starts.
func (s *Server) deadline(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc, error) {
	if timeoutMS < 0 {
		return nil, nil, fmt.Errorf("timeout_ms must be >= 0, got %d", timeoutMS)
	}
	if ferr := FaultDeadline.Fire(r.Context()); ferr != nil {
		return nil, nil, rerr.DeadlineBudget("deadline_exceeded",
			"cross-tier deadline budget exhausted before the request could start")
	}
	var headerDL time.Time
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("malformed %s header %q", DeadlineHeader, h)
		}
		headerDL = time.UnixMilli(ms)
		if !time.Now().Before(headerDL) {
			return nil, nil, rerr.DeadlineBudget("deadline_exceeded",
				"cross-tier deadline budget exhausted before the request could start")
		}
	}
	d := time.Duration(timeoutMS) * time.Millisecond
	if d == 0 {
		d = s.opts.DefaultTimeout
	}
	dl := headerDL
	if d > 0 {
		if own := time.Now().Add(d); dl.IsZero() || own.Before(dl) {
			dl = own
		}
	}
	if dl.IsZero() {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithDeadline(r.Context(), dl)
	return ctx, cancel, nil
}

// writeDeadlineError renders a deadline() failure: typed budget errors
// (an expired cross-tier header, an armed server/deadline fault) keep
// their taxonomy status (504), plain validation failures are 400s.
func writeDeadlineError(w http.ResponseWriter, err error) {
	var te *rerr.Error
	if errors.As(err, &te) {
		writeTypedError(w, err)
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

// decode reads a size-limited JSON body into dst, distinguishing
// oversized bodies (413) from malformed ones (400).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("request: %w", err)
	}
	return 0, nil
}

// compileKernel runs one kernel through cache + pipeline, maintaining
// the in-flight gauge and cumulative stage times.
func (s *Server) compileKernel(ctx context.Context, cfg *pipeline.Config, f *ir.Func) (cachedArtifact, bool, cache.Key, error) {
	key := cache.KeyFor(cfg, f)
	// A degraded (fallback-placed or shrink-truncated) artifact is served
	// to the requester that paid for it but never published to the cache:
	// the next request gets a fresh shot at the full solver. The keep
	// predicate enforces that atomically inside the fill path — an
	// add-then-remove would briefly serve the degraded artifact as a hit
	// to concurrent requests.
	keep := func(ca cachedArtifact) bool { return ca.art == nil || !ca.art.Degraded }
	diskServed := false
	ca, hit, err := s.cache.GetOrComputeKeep(ctx, key, func() (cachedArtifact, error) {
		// Second level: an artifact persisted by an earlier run (or an
		// earlier process — the disk cache survives restarts) is promoted
		// back into the LRU without touching the pipeline. Disk-served
		// entries carry no in-memory Artifact (art == nil), which the keep
		// predicate treats as publishable: only non-degraded artifacts are
		// ever persisted.
		if data, ok := s.diskGet(ctx, key); ok {
			diskServed = true
			return cachedArtifact{rendered: data}, nil
		}
		if onCompileStart != nil {
			onCompileStart()
		}
		s.kernels.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		art, err := pipeline.Compile(ctx, cfg, f)
		if err != nil {
			return cachedArtifact{}, err
		}
		s.stageMu.Lock()
		s.stages.Add(art.Stages)
		s.place.Add(art.Place)
		s.stageMu.Unlock()
		s.stageSkips.Add(int64(art.StagesSkipped))
		ca := render(art)
		if !art.Degraded {
			s.diskPut(ctx, key, ca.rendered)
		}
		return ca, nil
	}, keep)
	return ca, hit || diskServed, key, err
}

// compileStatus maps a typed pipeline/cache error to an HTTP status.
// The policy lives in rerr.HTTPStatus so the shard router renders the
// same taxonomy the same way.
func compileStatus(err error) int { return rerr.HTTPStatus(err) }

// writeTypedError renders err through the taxonomy: stable message and
// machine-readable code only (never internal fmt chains or paths), with
// Retry-After set on the statuses a client should back off and retry.
func writeTypedError(w http.ResponseWriter, err error) {
	status := compileStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorResponse{
		Error:     rerr.Message(err),
		Code:      status,
		ErrorCode: rerr.CodeOf(err),
		Class:     rerr.ClassOf(err).String(),
	})
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	release, err := s.admit(r.Context())
	if err != nil {
		writeTypedError(w, err)
		return
	}
	defer release()
	if err := FaultCompile.Fire(r.Context()); err != nil {
		writeTypedError(w, err)
		return
	}
	var req CompileRequest
	if code, err := s.decode(w, r, &req); err != nil {
		writeError(w, code, err.Error())
		return
	}
	famName, cfg, err := s.family(req.Family)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Exact-text fast path: byte-identical source under the same family
	// keys the same artifact, so a resident entry is served without
	// parsing. Misses (first sight of this text, or the artifact was
	// evicted) take the canonical slow path below.
	tk := textKey(famName, req.IR)
	if te, ok := s.texts.Peek(tk); ok {
		if ca, ok := s.cache.Peek(te.key); ok {
			name := req.Name
			if name == "" {
				name = te.name
			}
			writeJSON(w, http.StatusOK, compileResponseWire{
				Name:     name,
				Family:   famName,
				Cache:    "hit",
				Key:      string(te.key),
				Artifact: ca.rendered,
			})
			return
		}
	}

	f, err := ir.Parse(req.IR)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parse: %v", err))
		return
	}
	ctx, cancel, err := s.deadline(r, req.TimeoutMS)
	if err != nil {
		writeDeadlineError(w, err)
		return
	}
	defer cancel()

	s.texts.Add(tk, textEntry{key: cache.KeyFor(cfg, f), name: f.Name})
	ca, hit, key, err := s.compileKernel(ctx, cfg, f)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	resp := compileResponseWire{
		Name:     req.Name,
		Family:   famName,
		Cache:    cacheStatus(hit),
		Key:      string(key),
		Artifact: ca.rendered,
	}
	if resp.Name == "" {
		resp.Name = f.Name
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, err := s.admit(r.Context())
	if err != nil {
		writeTypedError(w, err)
		return
	}
	defer release()
	if err := FaultBatch.Fire(r.Context()); err != nil {
		writeTypedError(w, err)
		return
	}
	var req BatchRequest
	if code, err := s.decode(w, r, &req); err != nil {
		writeError(w, code, err.Error())
		return
	}
	famName, cfg, err := s.family(req.Family)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Kernels) == 0 {
		writeError(w, http.StatusBadRequest, "batch: no kernels")
		return
	}
	jobs := req.Jobs
	if jobs == 0 {
		jobs = s.opts.Jobs
	}
	opts := batch.Options{Jobs: jobs, KernelTimeout: time.Duration(req.TimeoutMS) * time.Millisecond}
	if err := opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel, err := s.deadline(r, 0) // overall deadline: server default
	if err != nil {
		writeDeadlineError(w, err)
		return
	}
	defer cancel()

	prep := s.prepBatch(ctx, cfg, req.Kernels)

	if req.Stream || r.Header.Get("Accept") == ndjsonContentType {
		s.streamBatch(ctx, w, famName, cfg, prep, opts)
		return
	}

	var stats batch.Stats
	var batchResults []batch.Result
	if len(prep.missJobs) > 0 {
		s.inflight.Add(int64(len(prep.missJobs)))
		s.kernels.Add(int64(len(prep.missJobs)))
		batchResults, stats, err = batch.Compile(ctx, cfg, prep.missJobs, opts)
		s.inflight.Add(-int64(len(prep.missJobs)))
		if err != nil {
			writeTypedError(w, err)
			return
		}
		s.stageMu.Lock()
		s.stages.Add(stats.Stages)
		s.place.Add(stats.Place)
		s.stageMu.Unlock()
		s.stageSkips.Add(int64(stats.StagesSkipped))
	}

	results := prep.results
	published := make(map[cache.Key]bool, len(prep.missJobs))
	succeeded, failed, degraded := 0, 0, 0
	for i := range results {
		if results[i].Cache == "miss" {
			br := batchResults[prep.missIdx[prep.keys[i]]]
			if br.Ok() {
				ca := render(br.Artifact)
				// Degraded artifacts go to the requester, not the cache —
				// neither tier of it (see handleCompile).
				if !br.Artifact.Degraded {
					if !published[prep.keys[i]] {
						published[prep.keys[i]] = true
						s.cache.Add(prep.keys[i], ca)
						s.diskPut(ctx, prep.keys[i], ca.rendered)
					}
				} else {
					degraded++
				}
				results[i].OK = true
				results[i].Artifact = ca.rendered
			} else {
				// Per-kernel failures cross the wire as the typed stable
				// message and code only — never raw fmt.Errorf chains.
				results[i].Error = rerr.Message(br.Err)
				results[i].ErrorCode = rerr.CodeOf(br.Err)
			}
		}
		if results[i].OK {
			succeeded++
		} else {
			failed++
		}
	}
	writeJSON(w, http.StatusOK, batchResponseWire{
		Family:  famName,
		Results: results,
		Stats: BatchStatsJSON{
			Kernels:       len(results),
			Succeeded:     succeeded,
			Failed:        failed,
			Compiled:      len(prep.missJobs),
			WallNS:        stats.Wall.Nanoseconds(),
			KernelsPerSec: stats.KernelsPerSec,
			Degraded:      degraded,
			Retried:       stats.Retried,
			StagesSkipped: stats.StagesSkipped,
		},
	})
}

// batchPrep is the cache-checked plan for one /batch request, shared by
// the buffered and streaming emitters: per-kernel wire results with
// parse failures and cache hits already resolved, plus the deduped list
// of kernels that must actually compile.
type batchPrep struct {
	results  []batchKernelResultWire
	keys     []cache.Key
	missJobs []batch.Job
	missIdx  map[cache.Key]int // key -> index into missJobs
}

// prepBatch parses every kernel (per-kernel errors never fail the
// batch), resolves cache hits through both tiers (memory LRU first,
// then the persistent disk cache, promoting disk hits into the LRU),
// and dedupes the remaining misses by key, so a batch of N identical
// kernels compiles once, like N concurrent /compile calls would.
func (s *Server) prepBatch(ctx context.Context, cfg *pipeline.Config, kernels []BatchKernel) batchPrep {
	prep := batchPrep{
		results: make([]batchKernelResultWire, len(kernels)),
		keys:    make([]cache.Key, len(kernels)),
		missIdx: map[cache.Key]int{},
	}
	for i, k := range kernels {
		name := k.Name
		f, perr := ir.Parse(k.IR)
		if perr == nil && name == "" {
			name = f.Name
		}
		prep.results[i] = batchKernelResultWire{Name: name}
		if perr != nil {
			prep.results[i].Error = fmt.Sprintf("parse: %v", perr)
			prep.results[i].ErrorCode = "parse_failed"
			continue
		}
		key := cache.KeyFor(cfg, f)
		prep.keys[i] = key
		if ca, ok := s.cache.Get(key); ok {
			prep.results[i].Cache = "hit"
			prep.results[i].OK = true
			prep.results[i].Artifact = ca.rendered
			continue
		}
		if data, ok := s.diskGet(ctx, key); ok {
			s.cache.Add(key, cachedArtifact{rendered: data})
			prep.results[i].Cache = "hit"
			prep.results[i].OK = true
			prep.results[i].Artifact = data
			continue
		}
		prep.results[i].Cache = "miss"
		if _, queued := prep.missIdx[key]; !queued {
			prep.missIdx[key] = len(prep.missJobs)
			prep.missJobs = append(prep.missJobs, batch.Job{Name: name, Func: f})
		}
	}
	return prep
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		UptimeMS: time.Since(s.start).Milliseconds(),
		Families: s.Families(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	s.stageMu.Lock()
	st := s.stages
	ps := s.place
	s.stageMu.Unlock()
	var disk *DiskStatsJSON
	if s.disk != nil {
		dj := DiskStatsJSONFrom(s.disk.Stats())
		disk = &dj
	}
	var hints *HintCacheStatsJSON
	if s.hints != nil {
		hj := hintCacheJSON(s.hints.Stats())
		hints = &hj
	}
	var stagec *StageCacheStatsJSON
	if s.stagec != nil {
		sj := stageCacheJSON(s.stagec.Stats(), s.stageSkips.Load())
		stagec = &sj
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Requests:        s.requests.Load(),
		Kernels:         s.kernels.Load(),
		InFlightKernels: s.inflight.Load(),
		UptimeMS:        time.Since(s.start).Milliseconds(),
		Families:        s.Families(),
		Cache: CacheStatsJSON{
			Entries:    cs.Entries,
			MaxEntries: cs.MaxEntries,
			Hits:       cs.Hits,
			Misses:     cs.Misses,
			Coalesced:  cs.Coalesced,
			Evictions:  cs.Evictions,
			Computes:   cs.Computes,
			InFlight:   cs.InFlight,
			HitRate:    cs.HitRate(),
		},
		Disk:       disk,
		Stages:     stageJSON(st),
		Place:      placeJSON(ps),
		HintCache:  hints,
		StageCache: stagec,
		Mem:        MemStatsJSONNow(),
		Explore: ExploreTotalsJSON{
			Sweeps:           s.exploreSweeps.Load(),
			Variants:         s.exploreVariants.Load(),
			VariantCacheHits: s.exploreHits.Load(),
			Partial:          s.explorePartial.Load(),
		},
	})
}

func cacheStatus(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg, Code: code})
}
