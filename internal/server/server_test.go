package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"reticle"
	"reticle/internal/server"
)

const maccSrc = `
def macc(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
}`

// newTestServer builds a service over both bundled families with
// test-friendly bounds.
func newTestServer(t testing.TB, opts reticle.ServerOptions) *server.Server {
	t.Helper()
	s, err := reticle.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post sends a JSON body and decodes the response into out, returning
// the status code.
func post(t testing.TB, h http.Handler, path string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, h, path, data, out)
}

func postRaw(t testing.TB, h http.Handler, path string, data []byte, out any) int {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: content-type %q, want application/json", path, ct)
	}
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: response is not JSON: %v\n%s", path, err, w.Body.String())
		}
	}
	return w.Code
}

func get(t testing.TB, h http.Handler, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s: response is not JSON: %v\n%s", path, err, w.Body.String())
		}
	}
	return w.Code
}

// TestCompileMatchesDirectCompile: for every bundled example program on
// both families, the service response — uncached and cached — carries
// artifact bytes identical to a direct reticle.Compile.
func TestCompileMatchesDirectCompile(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	compilers := map[string]*reticle.Compiler{}
	for fam, opts := range map[string]reticle.Options{
		"ultrascale": {},
		"agilex":     {Target: reticle.Agilex(), Device: reticle.AGF014()},
	} {
		c, err := reticle.NewCompilerWith(opts)
		if err != nil {
			t.Fatal(err)
		}
		compilers[fam] = c
	}

	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.ret"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example programs: %v", err)
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for fam, c := range compilers {
			want, err := c.CompileString(string(src))
			if err != nil {
				t.Fatalf("%s/%s: direct compile: %v", path, fam, err)
			}
			for round, wantCache := range []string{"miss", "hit"} {
				var resp server.CompileResponse
				code := post(t, s, "/compile", server.CompileRequest{IR: string(src), Family: fam}, &resp)
				if code != http.StatusOK {
					t.Fatalf("%s/%s: status %d", path, fam, code)
				}
				if resp.Cache != wantCache {
					t.Errorf("%s/%s round %d: cache=%q, want %q", path, fam, round, resp.Cache, wantCache)
				}
				if resp.Artifact.Verilog != want.Verilog {
					t.Errorf("%s/%s round %d: Verilog differs from direct compile", path, fam, round)
				}
				if resp.Artifact.Asm != want.Asm.String() || resp.Artifact.Placed != want.Placed.String() {
					t.Errorf("%s/%s round %d: assembly differs from direct compile", path, fam, round)
				}
				if resp.Artifact.LUTs != want.LUTs || resp.Artifact.DSPs != want.DSPs ||
					resp.Artifact.FMaxMHz != want.FMaxMHz {
					t.Errorf("%s/%s round %d: stats differ from direct compile", path, fam, round)
				}
				if resp.Family != fam {
					t.Errorf("family = %q, want %q", resp.Family, fam)
				}
			}
		}
	}
}

// TestCompileCacheSecondRequestHits is the acceptance criterion verbatim:
// POST /compile twice with the same kernel — the second response says
// "cache":"hit" and carries byte-identical artifact fields, and an
// alpha-renamed variant of the kernel hits too (canonical hashing).
func TestCompileCacheSecondRequestHits(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	var first, second, renamed server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &first); code != http.StatusOK {
		t.Fatalf("first: status %d", code)
	}
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &second); code != http.StatusOK {
		t.Fatalf("second: status %d", code)
	}
	if first.Cache != "miss" || second.Cache != "hit" {
		t.Errorf("cache fields = %q, %q; want miss, hit", first.Cache, second.Cache)
	}
	if first.Key != second.Key {
		t.Errorf("keys differ: %s vs %s", first.Key, second.Key)
	}
	a, b := first.Artifact, second.Artifact
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Errorf("artifact bytes differ between miss and hit:\n%s\nvs\n%s", ab, bb)
	}

	alpha := strings.NewReplacer("t0", "prod", "t1", "sum").Replace(maccSrc)
	if code := post(t, s, "/compile", server.CompileRequest{IR: alpha}, &renamed); code != http.StatusOK {
		t.Fatalf("renamed: status %d", code)
	}
	if renamed.Cache != "hit" || renamed.Key != first.Key {
		t.Errorf("alpha-renamed kernel missed the cache (cache=%q)", renamed.Cache)
	}
}

// TestSingleflight32Clients: 32 concurrent clients posting the same
// kernel compile it exactly once — asserted through the /stats computes
// counter — and all receive identical Verilog.
func TestSingleflight32Clients(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	const n = 32
	var wg sync.WaitGroup
	resps := make([]server.CompileResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &resps[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if resps[i].Artifact.Verilog != resps[0].Artifact.Verilog {
			t.Fatalf("client %d received different Verilog", i)
		}
	}
	var st server.StatsResponse
	if code := get(t, s, "/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	if st.Cache.Computes != 1 {
		t.Errorf("computes = %d after 32 concurrent identical requests, want 1", st.Cache.Computes)
	}
	if got := st.Cache.Hits + st.Cache.Coalesced + st.Cache.Misses; got != n {
		t.Errorf("lookups = %d, want %d", got, n)
	}
	if st.InFlightKernels != 0 {
		t.Errorf("in-flight kernels = %d after completion", st.InFlightKernels)
	}
}

// TestErrorPaths: malformed JSON, malformed IR, unknown family, bad
// timeouts, and semantic compile failures all return structured JSON
// errors with the right status family — and the server keeps serving.
func TestErrorPaths(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed-json", `{"ir": `, http.StatusBadRequest},
		{"unknown-field", `{"ir": "x", "bogus": 1}`, http.StatusBadRequest},
		{"empty-body", ``, http.StatusBadRequest},
		{"malformed-ir", `{"ir": "def broken("}`, http.StatusBadRequest},
		{"unknown-family", `{"ir": "def f(a:i8) -> (y:i8) { y:i8 = id(a); }", "family": "ice40"}`, http.StatusBadRequest},
		{"negative-timeout", `{"ir": "def f(a:i8) -> (y:i8) { y:i8 = id(a); }", "timeout_ms": -5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var errResp server.ErrorResponse
		code := postRaw(t, s, "/compile", []byte(tc.body), &errResp)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.code, errResp.Error)
		}
		if errResp.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
		if errResp.Code != code {
			t.Errorf("%s: body code %d != status %d", tc.name, errResp.Code, code)
		}
	}

	// A kernel that parses but cannot compile (vector width capacity) is
	// an unprocessable entity, not a 500.
	var errResp server.ErrorResponse
	big := `def f(a:i64<64>, b:i64<64>) -> (y:i64<64>) { y:i64<64> = mul(a, b) @dsp; }`
	code := post(t, s, "/compile", server.CompileRequest{IR: big}, &errResp)
	if code != http.StatusUnprocessableEntity && code != http.StatusOK {
		t.Errorf("semantic failure: status %d, want 422 (err %q)", code, errResp.Error)
	}

	// The server must still be healthy after the error barrage.
	var h server.HealthResponse
	if code := get(t, s, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz after errors: %d %+v", code, h)
	}
}

// TestOversizedBody: a body past MaxBodyBytes is a structured 413, not a
// dropped connection, and does not kill the server.
func TestOversizedBody(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{MaxBodyBytes: 512})
	big, _ := json.Marshal(server.CompileRequest{IR: strings.Repeat("x", 4096)})
	var errResp server.ErrorResponse
	if code := postRaw(t, s, "/compile", big, &errResp); code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413 (%s)", code, errResp.Error)
	}
	var resp server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &resp); code != http.StatusOK {
		t.Errorf("server unusable after oversized body: %d", code)
	}
}

// TestExpiredDeadline: a request deadline that cannot be met surfaces as
// a 504 with a structured error, propagated from the pipeline's
// stage-boundary context checks. The pipeline-entry hook holds the
// kernel until the 1 ms deadline has certainly expired, so the check at
// the selection boundary fires deterministically.
func TestExpiredDeadline(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	server.SetOnCompileStart(func() { time.Sleep(20 * time.Millisecond) })
	defer server.SetOnCompileStart(nil)

	var errResp server.ErrorResponse
	code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc, TimeoutMS: 1}, &errResp)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, errResp.Error)
	}
	if !strings.Contains(errResp.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", errResp.Error)
	}

	// The failed compile was not cached: once the hook is gone the same
	// kernel compiles fine.
	server.SetOnCompileStart(nil)
	var resp server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &resp); code != http.StatusOK {
		t.Fatalf("compile after expired deadline: %d", code)
	}
	if resp.Cache != "miss" {
		t.Errorf("cache = %q, want miss (timeouts must not be cached)", resp.Cache)
	}
}

// TestBatchEndpoint: mixed batches keep per-kernel isolation (a parse
// failure never fails the batch), duplicate kernels compile once, and
// artifacts populate the shared cache so /compile hits afterwards.
func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	add := `def addk(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }`
	var resp server.BatchResponse
	code := post(t, s, "/batch", server.BatchRequest{
		Jobs: 4,
		Kernels: []server.BatchKernel{
			{Name: "k0", IR: maccSrc},
			{Name: "k1", IR: `def broken(`},
			{Name: "k2", IR: add},
			{Name: "k3", IR: maccSrc}, // duplicate of k0: must not compile twice
		},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	r := resp.Results
	if len(r) != 4 {
		t.Fatalf("got %d results", len(r))
	}
	if !r[0].OK || r[1].OK || !r[2].OK || !r[3].OK {
		t.Fatalf("ok flags = %v %v %v %v", r[0].OK, r[1].OK, r[2].OK, r[3].OK)
	}
	if !strings.Contains(r[1].Error, "parse") {
		t.Errorf("k1 error %q should be a parse error", r[1].Error)
	}
	if r[0].Artifact.Verilog != r[3].Artifact.Verilog {
		t.Error("duplicate kernels produced different Verilog")
	}
	if resp.Stats.Compiled != 2 {
		t.Errorf("compiled = %d, want 2 (dedup + parse failure)", resp.Stats.Compiled)
	}
	if resp.Stats.Succeeded != 3 || resp.Stats.Failed != 1 {
		t.Errorf("stats = %+v", resp.Stats)
	}

	// The batch populated the shared cache: /compile now hits.
	var c server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: add}, &c); code != http.StatusOK {
		t.Fatalf("/compile after batch: %d", code)
	}
	if c.Cache != "hit" {
		t.Errorf("cache = %q after /batch populated it, want hit", c.Cache)
	}

	// A second identical batch is all hits: zero compiles.
	var again server.BatchResponse
	post(t, s, "/batch", server.BatchRequest{Kernels: []server.BatchKernel{
		{IR: maccSrc}, {IR: add},
	}}, &again)
	if again.Stats.Compiled != 0 {
		t.Errorf("second batch compiled %d kernels, want 0", again.Stats.Compiled)
	}
	for _, kr := range again.Results {
		if kr.Cache != "hit" {
			t.Errorf("second batch kernel %s: cache=%q", kr.Name, kr.Cache)
		}
	}

	// Validation failures surface as 400s with the batch tier's typed
	// error text.
	var errResp server.ErrorResponse
	if code := post(t, s, "/batch", server.BatchRequest{
		Jobs:    -1,
		Kernels: []server.BatchKernel{{IR: add}},
	}, &errResp); code != http.StatusBadRequest {
		t.Errorf("jobs=-1: status %d, want 400", code)
	}
	if code := post(t, s, "/batch", server.BatchRequest{
		TimeoutMS: -1,
		Kernels:   []server.BatchKernel{{IR: add}},
	}, &errResp); code != http.StatusBadRequest {
		t.Errorf("timeout=-1: status %d, want 400", code)
	}
	if code := post(t, s, "/batch", server.BatchRequest{}, &errResp); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
}

// TestHealthzAndStats: liveness and observability endpoints carry the
// documented fields.
func TestHealthzAndStats(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	var h server.HealthResponse
	if code := get(t, s, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	if h.Status != "ok" || len(h.Families) != 2 {
		t.Errorf("health = %+v", h)
	}

	post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, nil)
	post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, nil)

	var st server.StatsResponse
	if code := get(t, s, "/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v", st.Cache)
	}
	if st.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.Cache.HitRate)
	}
	if st.Kernels != 1 {
		t.Errorf("kernels = %d, want 1 (one compile, one hit)", st.Kernels)
	}
	if st.Stages.SelectNS <= 0 || st.Stages.PlaceNS <= 0 {
		t.Errorf("cumulative stage times missing: %+v", st.Stages)
	}
	if st.Requests < 4 {
		t.Errorf("requests = %d, want >= 4", st.Requests)
	}
}

// TestPanicIsolation: a handler-path panic becomes a 500 JSON response
// and the server keeps serving — batch's recovery semantics at the HTTP
// layer.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	server.SetOnCompileStart(func() { panic("synthetic pipeline panic") })
	var errResp server.ErrorResponse
	code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &errResp)
	server.SetOnCompileStart(nil)
	if code != http.StatusInternalServerError && code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 5xx/422 structured error", code)
	}
	if !strings.Contains(errResp.Error, "panic") {
		t.Errorf("error %q should mention the panic", errResp.Error)
	}
	var resp server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &resp); code != http.StatusOK {
		t.Fatalf("server dead after panic: %d", code)
	}
}

// TestDrainOnShutdown: Shutdown with an in-flight compile completes that
// request (200 with a full artifact) before returning.
func TestDrainOnShutdown(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	inPipeline := make(chan struct{}, 1)
	server.SetOnCompileStart(func() {
		select {
		case inPipeline <- struct{}{}:
		default:
		}
	})
	defer server.SetOnCompileStart(nil)

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr.String()

	type result struct {
		code int
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		data, _ := json.Marshal(server.CompileRequest{IR: maccSrc})
		resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(data))
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{code: resp.StatusCode, body: body}
	}()

	select {
	case <-inPipeline: // the request is inside the pipeline: drain now
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the pipeline")
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, body %s", r.code, r.body)
	}
	var resp server.CompileResponse
	if err := json.Unmarshal(r.body, &resp); err != nil || resp.Artifact.Verilog == "" {
		t.Fatalf("drained response incomplete: %v", err)
	}

	// New connections are refused after drain.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}
