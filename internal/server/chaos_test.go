package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"reticle"
	"reticle/internal/faults"
	"reticle/internal/rerr"
	"reticle/internal/server"
)

// chaosPost is post with a fault plan armed on the request context, the
// same channel RETICLE_FAULTS feeds in production.
func chaosPost(t testing.TB, h http.Handler, path string, body any, plan *faults.Plan) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	req = req.WithContext(faults.WithPlan(req.Context(), plan))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// chaosModes are the four failure shapes every fault point is swept
// through.
var chaosModes = []struct {
	name string
	inj  faults.Injection
}{
	{"transient", faults.Injection{Class: rerr.Transient, Times: 1}},
	{"permanent", faults.Injection{Class: rerr.Permanent, Times: 1}},
	{"exhausted", faults.Injection{Class: rerr.Exhausted, Times: 1}},
	{"panic", faults.Injection{Panic: true, Times: 1}},
}

// chaosStatuses are the only statuses a fault is allowed to surface as.
var chaosStatuses = map[int]bool{
	http.StatusOK:                  true,
	http.StatusUnprocessableEntity: true,
	http.StatusTooManyRequests:     true,
	http.StatusInternalServerError: true,
	http.StatusServiceUnavailable:  true,
	http.StatusGatewayTimeout:      true,
}

// TestChaosSweep drives every registered fault point through every
// failure mode against a fresh server and asserts the blast-radius
// contract: the response is always a typed error or a valid (possibly
// Degraded) artifact — never a panic escaping the process, never an
// internal path or stack frame on the wire, never a silent wrong
// answer.
func TestChaosSweep(t *testing.T) {
	points := faults.Points()
	if len(points) < 10 {
		t.Fatalf("registry has %d fault points, want >= 10: %v", len(points), points)
	}
	registered := map[faults.Point]bool{}
	for _, info := range points {
		registered[info.Name] = true
	}
	for _, want := range []faults.Point{
		"pipeline/select", "pipeline/place", "cache/fill",
		"batch/worker", "server/admission", "place/solver-budget",
	} {
		if !registered[want] {
			t.Fatalf("fault point %q is not registered", want)
		}
	}

	for _, info := range points {
		point := info.Name
		for _, mode := range chaosModes {
			t.Run(fmt.Sprintf("%s/%s", point, mode.name), func(t *testing.T) {
				// A fresh server per subtest: nothing is cached, so every
				// fault point on the compile path is actually reached.
				s := newTestServer(t, reticle.ServerOptions{})
				plan := faults.NewPlan(map[faults.Point]faults.Injection{point: mode.inj})

				var w *httptest.ResponseRecorder
				onBatch := strings.HasPrefix(string(point), "batch/") || point == "server/batch"
				if onBatch {
					w = chaosPost(t, s, "/batch", server.BatchRequest{
						Kernels: []server.BatchKernel{{IR: maccSrc}, {Name: "second", IR: maccSrc}},
						Jobs:    1,
					}, plan)
				} else {
					w = chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
				}

				body := w.Body.String()
				if strings.Contains(body, "internal/") || strings.Contains(body, ".go:") ||
					strings.Contains(body, "goroutine ") {
					t.Fatalf("internal detail leaked on the wire:\n%s", body)
				}
				if !chaosStatuses[w.Code] {
					t.Fatalf("status %d outside the failure contract:\n%s", w.Code, body)
				}

				if w.Code != http.StatusOK {
					var er server.ErrorResponse
					if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
						t.Fatalf("error body is not JSON: %v\n%s", err, body)
					}
					if er.ErrorCode == "" || er.Class == "" || er.Error == "" {
						t.Errorf("error body missing typed fields: %+v", er)
					}
					if er.Code != w.Code {
						t.Errorf("body code %d != status %d", er.Code, w.Code)
					}
					if w.Code == http.StatusTooManyRequests || w.Code == http.StatusServiceUnavailable {
						if w.Header().Get("Retry-After") == "" {
							t.Errorf("status %d without Retry-After", w.Code)
						}
					}
					return
				}

				// 200: the answer must be complete and valid, degraded or not.
				if onBatch {
					var br server.BatchResponse
					if err := json.Unmarshal(w.Body.Bytes(), &br); err != nil {
						t.Fatalf("batch body is not JSON: %v\n%s", err, body)
					}
					for i, res := range br.Results {
						if res.OK {
							if res.Artifact.Verilog == "" {
								t.Errorf("kernel %d: ok with empty artifact", i)
							}
						} else if res.ErrorCode == "" || res.Error == "" {
							t.Errorf("kernel %d: failed without typed error: %+v", i, res)
						}
					}
					if mode.name == "transient" && point == "batch/worker" && br.Stats.Retried == 0 {
						t.Error("transient worker fault was not retried")
					}
				} else {
					var cr server.CompileResponse
					if err := json.Unmarshal(w.Body.Bytes(), &cr); err != nil {
						t.Fatalf("compile body is not JSON: %v\n%s", err, body)
					}
					if cr.Artifact.Verilog == "" || cr.Artifact.Asm == "" {
						t.Errorf("200 with incomplete artifact: %+v", cr.Artifact)
					}
					if cr.Artifact.Degraded && cr.Artifact.DegradedReason == "" {
						t.Error("Degraded artifact without a reason")
					}
				}

				// Point-specific contracts.
				if point == "place/solver-budget" && mode.name != "panic" {
					var cr server.CompileResponse
					json.Unmarshal(w.Body.Bytes(), &cr)
					if !cr.Artifact.Degraded {
						t.Error("solver-budget fault must degrade, not fail or hide")
					}
				}
			})
		}
	}
}

// TestChaosAdmission: any non-panic fault at server/admission is the
// load-shed path — 429, Retry-After, stable machine code.
func TestChaosAdmission(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		server.FaultAdmission: {Class: rerr.Exhausted, Times: 1},
	})
	w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429\n%s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.ErrorCode != "admission_rejected" {
		t.Errorf("error_code = %q, want admission_rejected", er.ErrorCode)
	}
	if er.Class != "resource-exhausted" {
		t.Errorf("class = %q, want resource-exhausted", er.Class)
	}
}

// TestAdmissionLoadShed: with MaxInFlight: 1 and a compile parked inside
// the pipeline, a second concurrent request is shed with 429 +
// Retry-After instead of queuing; after the first finishes, capacity is
// back.
func TestAdmissionLoadShed(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{MaxInFlight: 1})

	entered := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	server.SetOnCompileStart(func() {
		once.Do(func() {
			close(entered)
			<-proceed
		})
	})
	defer server.SetOnCompileStart(nil)

	type firstDone struct {
		code int
		body []byte
	}
	firstc := make(chan firstDone, 1)
	go func() {
		data, _ := json.Marshal(server.CompileRequest{IR: maccSrc})
		req := httptest.NewRequest("POST", "/compile", bytes.NewReader(data))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		firstc <- firstDone{w.Code, w.Body.Bytes()}
	}()
	<-entered // the first request now owns the only admission slot

	var er server.ErrorResponse
	data, _ := json.Marshal(server.CompileRequest{IR: maccSrc})
	req := httptest.NewRequest("POST", "/compile", bytes.NewReader(data))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("concurrent request: status %d, want 429\n%s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.ErrorCode != "admission_rejected" || er.Class != "resource-exhausted" {
		t.Errorf("shed body = %+v, want admission_rejected/resource-exhausted", er)
	}

	close(proceed)
	first := <-firstc
	if first.code != http.StatusOK {
		t.Fatalf("first request: status %d\n%s", first.code, first.body)
	}

	// Capacity released: the same request is admitted again (and now hits
	// the cache).
	var cr server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &cr); code != http.StatusOK {
		t.Fatalf("post-release request: status %d", code)
	}
	if cr.Cache != "hit" {
		t.Errorf("post-release cache = %q, want hit", cr.Cache)
	}
}

// TestDegradedNotCachedByServer: a solver-budget fault degrades request
// one; request two (no fault) must recompile from scratch — degraded
// artifacts are never replayed from the cache.
func TestDegradedNotCachedByServer(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		"place/solver-budget": {Class: rerr.Exhausted, Times: 1},
	})
	w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded request: status %d\n%s", w.Code, w.Body.String())
	}
	var first server.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if !first.Artifact.Degraded {
		t.Fatal("first response not degraded under solver-budget fault")
	}

	var second server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &second); code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if second.Cache != "miss" {
		t.Errorf("second request cache = %q, want miss (degraded must not be cached)", second.Cache)
	}
	if second.Artifact.Degraded {
		t.Error("second request degraded without a fault armed")
	}
}
