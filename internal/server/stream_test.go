package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"reticle"
	"reticle/internal/server"
)

// chainSrc builds a structurally distinct kernel per (name, n): an
// n-deep add chain. Distinct depths hash to distinct canonical keys, so
// sweeps built from them exercise real cache misses.
func chainSrc(name string, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "def %s(a:i8, b:i8) -> (y:i8) {\n", name)
	prev := "a"
	for i := 0; i < n; i++ {
		cur := fmt.Sprintf("t%d", i)
		fmt.Fprintf(&b, "    %s:i8 = add(%s, b) @??;\n", cur, prev)
		prev = cur
	}
	fmt.Fprintf(&b, "    y:i8 = add(%s, b) @??;\n", prev)
	b.WriteString("}\n")
	return b.String()
}

// sweepKernels is a small representative sweep: distinct kernels, a
// duplicate (same key as the first), and a parse failure.
func sweepKernels() []server.BatchKernel {
	return []server.BatchKernel{
		{IR: chainSrc("c1", 1)},
		{IR: chainSrc("c2", 2)},
		{IR: chainSrc("c3", 3)},
		{Name: "dup", IR: chainSrc("c1", 1)},
		{Name: "broken", IR: "def broken( {"},
		{IR: maccSrc},
	}
}

func postBody(t testing.TB, h http.Handler, path string, body any, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	for k, v := range header {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// streamLines splits an NDJSON body into its result lines and the
// footer line.
func streamLines(t testing.TB, body string) (results []string, footer string) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 1 {
		t.Fatalf("empty stream body")
	}
	return lines[:len(lines)-1], lines[len(lines)-1]
}

// TestStreamBatchDeterminism is the tentpole's framing contract: over a
// warmed cache (so per-kernel timings are the cached render, not a
// fresh nondeterministic compile), the concatenated NDJSON stream is
// byte-identical to the buffered /batch body for the same sweep — the
// splice {"family":F,"results":[line1,...,lineN],"stats":S} using the
// footer's raw fields reproduces the buffered response exactly.
func TestStreamBatchDeterminism(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	kernels := sweepKernels()

	// Warm both tiers: after this, every valid kernel is a cache hit, so
	// the buffered and streamed runs below serve identical bytes and a
	// deterministic (zero-wall) stats footer.
	if w := postBody(t, s, "/batch", server.BatchRequest{Kernels: kernels}, nil); w.Code != http.StatusOK {
		t.Fatalf("warm batch: status %d: %s", w.Code, w.Body.String())
	}

	buffered := postBody(t, s, "/batch", server.BatchRequest{Kernels: kernels}, nil)
	if buffered.Code != http.StatusOK {
		t.Fatalf("buffered batch: status %d: %s", buffered.Code, buffered.Body.String())
	}
	streamed := postBody(t, s, "/batch", server.BatchRequest{Kernels: kernels, Stream: true}, nil)
	if streamed.Code != http.StatusOK {
		t.Fatalf("streamed batch: status %d: %s", streamed.Code, streamed.Body.String())
	}
	if ct := streamed.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type %q, want application/x-ndjson", ct)
	}

	results, footer := streamLines(t, streamed.Body.String())
	if len(results) != len(kernels) {
		t.Fatalf("stream has %d result lines, want %d", len(results), len(kernels))
	}
	var foot struct {
		Family json.RawMessage `json:"family"`
		Stats  json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal([]byte(footer), &foot); err != nil {
		t.Fatalf("footer is not JSON: %v\n%s", err, footer)
	}

	var splice bytes.Buffer
	splice.WriteString(`{"family":`)
	splice.Write(foot.Family)
	splice.WriteString(`,"results":[`)
	splice.WriteString(strings.Join(results, ","))
	splice.WriteString(`],"stats":`)
	splice.Write(foot.Stats)
	splice.WriteString("}\n")

	if splice.String() != buffered.Body.String() {
		t.Fatalf("stream splice differs from buffered body\nstream splice:\n%s\nbuffered:\n%s",
			splice.String(), buffered.Body.String())
	}
}

// TestStreamBatchCold: a cold streamed sweep (real compiles through the
// worker pool) delivers one line per kernel in submission order, shares
// artifact bytes between duplicate kernels, reports parse failures
// inline, and closes with a footer whose counters match the sweep.
func TestStreamBatchCold(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	kernels := sweepKernels()
	w := postBody(t, s, "/batch", server.BatchRequest{Kernels: kernels, Jobs: 4, Stream: true}, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	lines, footer := streamLines(t, w.Body.String())
	if len(lines) != len(kernels) {
		t.Fatalf("%d result lines, want %d", len(lines), len(kernels))
	}

	var results []server.BatchKernelResult
	for i, line := range lines {
		var res server.BatchKernelResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		results = append(results, res)
	}
	for i, res := range results {
		if i == 4 {
			if res.OK || res.ErrorCode != "parse_failed" {
				t.Fatalf("parse-failure kernel reported %+v", res)
			}
			continue
		}
		if !res.OK || res.Artifact.Verilog == "" {
			t.Fatalf("kernel %d: not ok or empty artifact: %+v", i, res)
		}
		if res.Cache != "miss" {
			t.Fatalf("kernel %d: cold sweep served cache %q", i, res.Cache)
		}
	}
	if results[0].Artifact.Verilog != results[3].Artifact.Verilog {
		t.Fatal("duplicate kernels did not share one compile's artifact")
	}

	var foot struct {
		Family string                `json:"family"`
		Stats  server.BatchStatsJSON `json:"stats"`
	}
	if err := json.Unmarshal([]byte(footer), &foot); err != nil {
		t.Fatalf("footer is not JSON: %v\n%s", err, footer)
	}
	if foot.Family != "ultrascale" {
		t.Fatalf("footer family %q", foot.Family)
	}
	st := foot.Stats
	if st.Kernels != 6 || st.Succeeded != 5 || st.Failed != 1 || st.Compiled != 4 {
		// 4 compiled: c1..c3 and macc are the unique keys — the duplicate
		// dedupes onto c1's job, the parse failure never reaches the pool.
		t.Fatalf("footer stats %+v", st)
	}
}

// flushRecorder counts Flush calls, so the test can assert the stream
// is actually chunked (one flush per result line plus the footer), not
// buffered and dumped at the end.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestStreamBatchFlushesPerKernel: every result line is flushed as it
// is written.
func TestStreamBatchFlushesPerKernel(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	kernels := sweepKernels()
	data, err := json.Marshal(server.BatchRequest{Kernels: kernels, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	w := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	req := httptest.NewRequest("POST", "/batch", bytes.NewReader(data))
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if want := len(kernels) + 1; w.flushes < want {
		t.Fatalf("stream flushed %d times, want >= %d (per result line + footer)", w.flushes, want)
	}
}

// TestStreamBatchAcceptHeader: "Accept: application/x-ndjson" selects
// streaming without the body flag, so plain HTTP clients can opt in.
func TestStreamBatchAcceptHeader(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	w := postBody(t, s, "/batch", server.BatchRequest{Kernels: []server.BatchKernel{{IR: maccSrc}}},
		map[string]string{"Accept": "application/x-ndjson"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q, want application/x-ndjson", ct)
	}
	lines, footer := streamLines(t, w.Body.String())
	if len(lines) != 1 {
		t.Fatalf("%d result lines, want 1", len(lines))
	}
	if !strings.Contains(footer, `"stats"`) {
		t.Fatalf("footer missing stats: %s", footer)
	}
}
