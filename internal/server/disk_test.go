package server_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"reticle"
	"reticle/internal/faults"
	"reticle/internal/rerr"
	"reticle/internal/server"
)

// rawCompileResponse mirrors the /compile wire shape with the artifact
// kept as raw bytes, so byte-identity across processes can be asserted
// without a decode/re-encode round trip.
type rawCompileResponse struct {
	Name     string          `json:"name"`
	Family   string          `json:"family"`
	Cache    string          `json:"cache"`
	Key      string          `json:"key"`
	Artifact json.RawMessage `json:"artifact"`
}

// TestDiskCacheServerCrashRestart is the tentpole's crash-restart round
// trip at the service level: fill the disk cache through one server,
// tear it down, bring up a fresh server (a new process, as far as the
// cache can tell) over the same directory, and require byte-identical
// artifacts served as hits without a single pipeline run — the
// cold-vs-warm hit-rate jump a restart should show.
func TestDiskCacheServerCrashRestart(t *testing.T) {
	dir := t.TempDir()
	sources := []string{maccSrc, chainSrc("cr1", 2), chainSrc("cr2", 4)}

	cold := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	firstRun := make([]rawCompileResponse, len(sources))
	for i, src := range sources {
		var resp rawCompileResponse
		if code := post(t, cold, "/compile", server.CompileRequest{IR: src}, &resp); code != http.StatusOK {
			t.Fatalf("kernel %d: status %d", i, code)
		}
		if resp.Cache != "miss" {
			t.Fatalf("kernel %d: cold compile served cache %q", i, resp.Cache)
		}
		firstRun[i] = resp
	}
	coldDisk := cold.Disk().Stats()
	if coldDisk.Writes != uint64(len(sources)) || coldDisk.Hits != 0 {
		t.Fatalf("cold disk stats %+v, want %d writes / 0 hits", coldDisk, len(sources))
	}

	// "Crash": no explicit close exists or is needed — durability comes
	// from the write-temp-then-rename protocol, so simply abandoning the
	// first server models a killed process.
	warm := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	for i, src := range sources {
		var resp rawCompileResponse
		if code := post(t, warm, "/compile", server.CompileRequest{IR: src}, &resp); code != http.StatusOK {
			t.Fatalf("restart kernel %d: status %d", i, code)
		}
		if resp.Cache != "hit" {
			t.Fatalf("restart kernel %d: cache %q, want hit from the disk tier", i, resp.Cache)
		}
		if string(resp.Artifact) != string(firstRun[i].Artifact) {
			t.Fatalf("restart kernel %d: artifact bytes changed across restart\ngot:  %s\nwant: %s",
				i, resp.Artifact, firstRun[i].Artifact)
		}
		if resp.Key != firstRun[i].Key {
			t.Fatalf("restart kernel %d: key changed across restart: %s != %s", i, resp.Key, firstRun[i].Key)
		}
	}

	// Warm process: every request was a disk hit, zero kernels entered
	// the pipeline — the hit-rate jump.
	var stats server.StatsResponse
	if code := get(t, warm, "/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	if stats.Kernels != 0 {
		t.Fatalf("restarted server compiled %d kernels, want 0 (disk-served)", stats.Kernels)
	}
	if stats.Disk == nil {
		t.Fatal("/stats missing disk section with DiskDir set")
	}
	if stats.Disk.Hits != uint64(len(sources)) || stats.Disk.Misses != 0 {
		t.Fatalf("warm disk stats %+v, want %d hits / 0 misses", *stats.Disk, len(sources))
	}
	if stats.Disk.Entries != len(sources) {
		t.Fatalf("disk entries %d, want %d", stats.Disk.Entries, len(sources))
	}

	// And the batch tier reads the same second level: a fresh third
	// server serves the whole sweep as hits.
	third := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	kernels := make([]server.BatchKernel, len(sources))
	for i, src := range sources {
		kernels[i] = server.BatchKernel{IR: src}
	}
	var br server.BatchResponse
	if code := post(t, third, "/batch", server.BatchRequest{Kernels: kernels}, &br); code != http.StatusOK {
		t.Fatalf("/batch after restart: %d", code)
	}
	if br.Stats.Compiled != 0 {
		t.Fatalf("batch after restart compiled %d kernels, want 0", br.Stats.Compiled)
	}
	for i, res := range br.Results {
		if !res.OK || res.Cache != "hit" {
			t.Fatalf("batch kernel %d after restart: %+v", i, res)
		}
	}
}

// TestDiskDegradedNeverPersisted: a degraded (fallback-placed) artifact
// is served to the requester but written to neither cache tier, so a
// restart never replays it.
func TestDiskDegradedNeverPersisted(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		"place/solver-budget": {Class: rerr.Exhausted, Times: 1},
	})
	w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded compile: status %d: %s", w.Code, w.Body.String())
	}
	var resp server.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Artifact.Degraded {
		t.Fatal("solver-budget fault did not degrade the artifact")
	}
	if st := s.Disk().Stats(); st.Writes != 0 || st.Entries != 0 {
		t.Fatalf("degraded artifact reached the disk tier: %+v", st)
	}

	// The same kernel compiled healthily afterwards is persisted.
	var ok rawCompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &ok); code != http.StatusOK {
		t.Fatalf("healthy recompile: %d", code)
	}
	if st := s.Disk().Stats(); st.Writes != 1 {
		t.Fatalf("healthy artifact not persisted: %+v", st)
	}
}

// TestChaosDiskCacheFaults drives the two disk-tier fault points through
// the service: a read fault degrades to a miss (the kernel still
// compiles, 200), a write fault drops the persist without failing the
// compile, and a panic at either point is contained to a typed 500 —
// never an escaped panic or an internal path on the wire.
func TestChaosDiskCacheFaults(t *testing.T) {
	t.Run("read-degrades-to-miss", func(t *testing.T) {
		s := newTestServer(t, reticle.ServerOptions{DiskDir: t.TempDir()})
		plan := faults.NewPlan(map[faults.Point]faults.Injection{
			"cache/disk-read": {Class: rerr.Transient, Times: 1},
		})
		w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
		if w.Code != http.StatusOK {
			t.Fatalf("read fault failed the request: %d: %s", w.Code, w.Body.String())
		}
		st := s.Disk().Stats()
		if st.ReadErrors != 1 {
			t.Fatalf("read fault not counted: %+v", st)
		}
		if st.Writes != 1 {
			t.Fatalf("artifact not persisted after read fault: %+v", st)
		}
	})

	t.Run("write-drops-persist-keeps-compile", func(t *testing.T) {
		s := newTestServer(t, reticle.ServerOptions{DiskDir: t.TempDir()})
		plan := faults.NewPlan(map[faults.Point]faults.Injection{
			"cache/disk-write": {Class: rerr.Transient, Times: 1},
		})
		w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
		if w.Code != http.StatusOK {
			t.Fatalf("write fault failed the request: %d: %s", w.Code, w.Body.String())
		}
		st := s.Disk().Stats()
		if st.Writes != 0 || st.WriteErrors != 1 || st.Entries != 0 {
			t.Fatalf("write fault accounting: %+v", st)
		}
	})

	for _, point := range []faults.Point{"cache/disk-read", "cache/disk-write"} {
		t.Run(string(point)+"-panic-contained", func(t *testing.T) {
			s := newTestServer(t, reticle.ServerOptions{DiskDir: t.TempDir()})
			plan := faults.NewPlan(map[faults.Point]faults.Injection{
				point: {Panic: true, Times: 1},
			})
			w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
			if w.Code != http.StatusInternalServerError {
				t.Fatalf("panic at %s: status %d, want 500: %s", point, w.Code, w.Body.String())
			}
			var er server.ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
				t.Fatal(err)
			}
			if er.ErrorCode != "internal_panic" {
				t.Fatalf("panic at %s: error_code %q", point, er.ErrorCode)
			}
			body := w.Body.String()
			for _, leak := range []string{"internal/", ".go:", "goroutine "} {
				if strings.Contains(body, leak) {
					t.Fatalf("panic at %s leaked %q on the wire: %s", point, leak, body)
				}
			}
		})
	}
}
