package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"reticle/internal/batch"
	"reticle/internal/cache"
	"reticle/internal/pipeline"
	"reticle/internal/rerr"
)

// ndjsonContentType selects (via the Accept header) and labels (via
// Content-Type) the streaming /batch framing.
const ndjsonContentType = "application/x-ndjson"

// ndjsonFooter is the stream's final line: the batch-level fields of the
// buffered response that are only known once every kernel has finished.
// Field order matches batchResponseWire so a client (or the determinism
// test) can splice the stream back into the exact buffered body:
//
//	{"family":F,"results":[line1,...,lineN],"stats":S}
type ndjsonFooter struct {
	Family string         `json:"family"`
	Stats  BatchStatsJSON `json:"stats"`
}

// streamBatch is the chunked /batch emitter: one NDJSON line per kernel,
// flushed in submission order as soon as the kernel (and every kernel
// before it) has finished, then a footer line with the aggregate stats.
// Large sweeps therefore stream at the pace of the worker pool instead
// of buffering the whole result set in server memory; the per-line JSON
// is byte-identical to the corresponding element of the buffered
// response's results array.
func (s *Server) streamBatch(ctx context.Context, w http.ResponseWriter, famName string, cfg *pipeline.Config, prep batchPrep, opts batch.Options) {
	type missState struct {
		once sync.Once
		done chan struct{}
		res  batch.Result
	}
	misses := make([]*missState, len(prep.missJobs))
	for j := range misses {
		misses[j] = &missState{done: make(chan struct{})}
	}
	complete := func(j int, r batch.Result) {
		m := misses[j]
		m.once.Do(func() {
			m.res = r
			close(m.done)
		})
	}

	var stats batch.Stats
	batchDone := make(chan struct{})
	if len(prep.missJobs) > 0 {
		opts.OnResult = func(r batch.Result) { complete(r.Index, r) }
		s.inflight.Add(int64(len(prep.missJobs)))
		s.kernels.Add(int64(len(prep.missJobs)))
		go func() {
			defer close(batchDone)
			defer s.inflight.Add(-int64(len(prep.missJobs)))
			results, st, err := batch.Compile(ctx, cfg, prep.missJobs, opts)
			if err != nil {
				// Config/options failures are caught before streaming starts;
				// reaching here means the batch tier rejected a validated
				// request, so fail every pending kernel with the typed error.
				for j := range misses {
					complete(j, batch.Result{Index: j, Err: err})
				}
				return
			}
			// Kernels the cancelled dispatch loop never handed to a worker
			// bypass OnResult; release their waiters from the returned slice.
			for j := range results {
				complete(j, results[j])
			}
			stats = st
			s.stageMu.Lock()
			s.stages.Add(st.Stages)
			s.place.Add(st.Place)
			s.stageMu.Unlock()
			s.stageSkips.Add(int64(st.StagesSkipped))
		}()
	} else {
		close(batchDone)
	}

	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	rendered := make(map[cache.Key]json.RawMessage, len(prep.missJobs))
	degradedKeys := make(map[cache.Key]bool, len(prep.missJobs))
	succeeded, failed, degraded := 0, 0, 0
	enc := json.NewEncoder(w)
	for i := range prep.results {
		if prep.results[i].Cache == "miss" {
			j := prep.missIdx[prep.keys[i]]
			m := misses[j]
			select {
			case <-m.done:
			case <-ctx.Done():
				// The batch context died with this kernel still pending. The
				// compile goroutine is about to flush typed context errors
				// through complete(); wait for that authoritative result so
				// the stream and the buffered path report identically.
				<-m.done
			}
			br := m.res
			if br.Ok() {
				raw, ok := rendered[prep.keys[i]]
				if !ok {
					ca := render(br.Artifact)
					raw = ca.rendered
					rendered[prep.keys[i]] = raw
					// Degraded artifacts go to the requester, not to either
					// cache tier (see handleCompile).
					if br.Artifact.Degraded {
						degradedKeys[prep.keys[i]] = true
					} else {
						s.cache.Add(prep.keys[i], ca)
						s.diskPut(ctx, prep.keys[i], raw)
					}
				}
				if degradedKeys[prep.keys[i]] {
					degraded++
				}
				prep.results[i].OK = true
				prep.results[i].Artifact = raw
			} else {
				prep.results[i].Error = rerr.Message(br.Err)
				prep.results[i].ErrorCode = rerr.CodeOf(br.Err)
			}
		}
		if prep.results[i].OK {
			succeeded++
		} else {
			failed++
		}
		// Encode writes the line's JSON plus the NDJSON newline; an
		// encoding/write error means the client is gone, and the compile
		// goroutine is bounded by the request context it inherited.
		if err := enc.Encode(prep.results[i]); err != nil {
			return
		}
		flush()
	}

	<-batchDone
	enc.Encode(ndjsonFooter{
		Family: famName,
		Stats: BatchStatsJSON{
			Kernels:       len(prep.results),
			Succeeded:     succeeded,
			Failed:        failed,
			Compiled:      len(prep.missJobs),
			WallNS:        stats.Wall.Nanoseconds(),
			KernelsPerSec: stats.KernelsPerSec,
			Degraded:      degraded,
			Retried:       stats.Retried,
			StagesSkipped: stats.StagesSkipped,
		},
	})
	flush()
}
