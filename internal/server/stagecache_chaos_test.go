package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reticle"
	"reticle/internal/faults"
	"reticle/internal/rerr"
	"reticle/internal/server"
	"reticle/internal/stagecache"
)

// The stage-cache chaos suite pins the memo's blast-radius contract,
// which is stricter than the generic sweep's: the stage cache is pure
// acceleration, so ANY failure inside it — armed lookup faults, armed
// store faults, panics, corrupt disk frames under DIR/stages — must
// produce a 200 with an artifact byte-identical to an unfaulted cold
// compile. Zero 5xx, zero degraded output, zero wrong answers.

// exploreSweep posts one jobs:1 /explore (sequential, so in-sweep stage
// sharing is deterministic: nocascade variants reuse their base
// variant's selection) with an optional fault plan, requiring 200.
func exploreSweep(t *testing.T, s *server.Server, plan *faults.Plan) *httptest.ResponseRecorder {
	t.Helper()
	w := chaosPost(t, s, "/explore", server.ExploreRequest{IR: maccSrc, Jobs: 1}, plan)
	if w.Code != http.StatusOK {
		t.Fatalf("explore under stage-cache chaos: status %d (want 200 — the memo must never fail a request)\n%s",
			w.Code, w.Body.String())
	}
	return w
}

// TestStageCacheChaosTransparent arms each stage-cache fault point in
// every failure mode, uncapped (every evaluation fires), and sweeps the
// macc lattice: the response must be byte-identical to a clean sweep on
// a fresh server.
func TestStageCacheChaosTransparent(t *testing.T) {
	clean := newTestServer(t, reticle.ServerOptions{})
	want := exploreDeterministic(t, exploreSweep(t, clean, nil).Body.Bytes())

	points := []faults.Point{stagecache.FaultLookup, stagecache.FaultStore}
	modes := []struct {
		name string
		inj  faults.Injection
	}{
		{"transient", faults.Injection{Class: rerr.Transient}},
		{"exhausted", faults.Injection{Class: rerr.Exhausted}},
		{"panic", faults.Injection{Panic: true}},
	}
	for _, point := range points {
		for _, mode := range modes {
			t.Run(string(point)+"/"+mode.name, func(t *testing.T) {
				s := newTestServer(t, reticle.ServerOptions{})
				plan := faults.NewPlan(map[faults.Point]faults.Injection{point: mode.inj})
				// Two sweeps with the fault held armed: the first compiles
				// everything, the second re-compiles (store faults mean the
				// artifact tier still serves it; lookup faults mean the stage
				// tier recomputes) — both must match the clean sweep exactly.
				for pass := 0; pass < 2; pass++ {
					got := exploreDeterministic(t, exploreSweep(t, s, plan).Body.Bytes())
					if got != want {
						t.Fatalf("pass %d: faulted sweep diverged from clean sweep:\n--- faulted\n%s\n--- clean\n%s", pass, got, want)
					}
				}
			})
		}
	}
}

// TestStageCacheChaosLookupStillCountsNothingSkipped: with lookups
// permanently faulted the memo can never answer, so the server's
// stages_skipped accumulator must stay zero — the counter reports real
// skips, not attempts.
func TestStageCacheChaosLookupStillCountsNothingSkipped(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		stagecache.FaultLookup: {Class: rerr.Transient},
	})
	exploreSweep(t, s, plan)
	exploreSweep(t, s, plan)
	var st server.StatsResponse
	if code := get(t, s, "/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.StageCache == nil {
		t.Fatal("stats missing stage_cache section")
	}
	if st.StageCache.StagesSkipped != 0 {
		t.Errorf("stages_skipped = %d with lookups faulted, want 0", st.StageCache.StagesSkipped)
	}
	if tot := st.StageCache.Totals(); tot.Hits != 0 {
		t.Errorf("store reported %d hits with lookups faulted", tot.Hits)
	}
}

// TestStageCacheDiskCorruptionTransparent: every frame under DIR/stages
// is overwritten with garbage between a warm run and a restart; the
// restarted server must recompute transparently — 200s, byte-identical
// artifacts, corruption surfaced only in the stats counters.
func TestStageCacheDiskCorruptionTransparent(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	want := exploreDeterministic(t, exploreSweep(t, s, nil).Body.Bytes())

	// Drop the persisted artifacts so the restarted server must actually
	// compile (and therefore consult the stage tier), then corrupt every
	// stage frame it will consult.
	topEnts, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range topEnts {
		if !e.IsDir() {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	stagesDir := filepath.Join(dir, "stages")
	ents, err := os.ReadDir(stagesDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no persisted stage entries under %s (err %v)", stagesDir, err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if err := os.WriteFile(filepath.Join(stagesDir, e.Name()), []byte("garbage, not an RTDC2 frame"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: fresh memory tiers over the same disk root. Every stage
	// lookup now reads a corrupt frame and must degrade to a recompute.
	s2 := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	got := exploreDeterministic(t, exploreSweep(t, s2, nil).Body.Bytes())
	if got != want {
		t.Fatalf("sweep over corrupt stage tier diverged:\n--- corrupt\n%s\n--- clean\n%s", got, want)
	}
	var st server.StatsResponse
	if code := get(t, s2, "/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.StageCache == nil || st.StageCache.Disk == nil {
		t.Fatal("stats missing stage_cache disk section")
	}
	if st.StageCache.Disk.Corrupt == 0 {
		t.Error("corrupt stage frames were read but not counted")
	}
}

// TestStageCacheStatsSection pins the /stats wire shape: the section is
// present by default, absent with NoStageCache, and a repeat jobs:1
// sweep drives stages_skipped and per-stage hits above zero.
func TestStageCacheStatsSection(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	exploreSweep(t, s, nil)
	exploreSweep(t, s, nil)

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/stats", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["stage_cache"]; !ok {
		t.Fatal("stats body missing stage_cache")
	}
	if _, ok := raw["mem"]; !ok {
		t.Fatal("stats body missing mem")
	}
	var st server.StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	sc := st.StageCache
	if sc == nil {
		t.Fatal("stats missing stage_cache section")
	}
	if sc.StagesSkipped == 0 {
		t.Error("repeat sweep reported zero stages_skipped")
	}
	if tot := sc.Totals(); tot.Hits == 0 || tot.Stores == 0 || tot.Bytes == 0 {
		t.Errorf("degenerate stage totals: %+v", tot)
	}
	if sc.Select.Hits == 0 {
		t.Errorf("select stage never hit across a repeat sweep: %+v", sc.Select)
	}
	if st.Mem.HeapAllocBytes == 0 || st.Mem.Goroutines == 0 {
		t.Errorf("degenerate mem snapshot: %+v", st.Mem)
	}

	off := newTestServer(t, reticle.ServerOptions{NoStageCache: true})
	exploreSweep(t, off, nil)
	w = httptest.NewRecorder()
	off.ServeHTTP(w, httptest.NewRequest("GET", "/stats", nil))
	var offRaw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &offRaw); err != nil {
		t.Fatal(err)
	}
	if _, ok := offRaw["stage_cache"]; ok {
		t.Error("NoStageCache server still reports a stage_cache section")
	}
}

// TestStageCacheDegradedNeverStored: a budget-degraded compile's stage
// results must not enter the memo — otherwise one degraded placement
// would be adopted by every later structurally-identical compile.
func TestStageCacheDegradedNeverStored(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		"place/solver-budget": {Class: rerr.Exhausted, Times: 1},
	})
	w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded compile: status %d\n%s", w.Code, w.Body.String())
	}
	var first server.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if !first.Artifact.Degraded {
		t.Fatal("first response not degraded under solver-budget fault")
	}
	var st server.StatsResponse
	if code := get(t, s, "/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.StageCache == nil {
		t.Fatal("stats missing stage_cache section")
	}
	// Selection and cascade run before the solver degrades and stay
	// non-degraded, so they may store; the placement and fused output
	// stages of a degraded compile must not.
	if st.StageCache.Place.Stores != 0 || st.StageCache.Output.Stores != 0 {
		t.Errorf("degraded compile stored place/output stages: place=%+v output=%+v",
			st.StageCache.Place, st.StageCache.Output)
	}

	// The recompile (no fault) must run the solver itself, not adopt
	// anything, and produce a clean artifact.
	var second server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &second); code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if second.Artifact.Degraded {
		t.Error("second request degraded without a fault armed")
	}
	if strings.Contains(second.Artifact.WarmStart, "stage") {
		t.Errorf("second compile warm-started %q from a degraded compile's stages", second.Artifact.WarmStart)
	}
}
