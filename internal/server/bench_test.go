package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"reticle"
	"reticle/internal/server"
)

// benchPost drives one /compile request through the handler path and
// fails the benchmark on any non-200.
func benchPost(b *testing.B, s *server.Server, body []byte) *httptest.ResponseRecorder {
	b.Helper()
	req := httptest.NewRequest("POST", "/compile", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	return w
}

// benchServer builds the service once per benchmark; cache sizing is
// generous so cold runs measure compile cost, not eviction churn.
func benchServer(b *testing.B) *server.Server {
	b.Helper()
	s, err := reticle.NewServer(reticle.ServerOptions{CacheEntries: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// coldKernel renders a macc-chain kernel that is unique per index (the
// function name participates in the canonical hash), so every request
// misses the cache and runs the full pipeline. Sixteen multiply-adds is a
// representative design-space-exploration kernel, big enough that the
// cold path is dominated by compile work rather than HTTP/JSON
// plumbing.
func coldKernel(i int) []byte {
	src := fmt.Sprintf("def macc%d(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {\n", i)
	src += "    t0:i8 = mul(a, b) @??;\n    s0:i8 = add(t0, c) @??;\n"
	for k := 1; k < 16; k++ {
		src += fmt.Sprintf("    t%d:i8 = mul(s%d, b) @??;\n    s%d:i8 = add(t%d, c) @??;\n",
			k, k-1, k, k)
	}
	src += "    y:i8 = reg[0](s15, en) @??;\n}\n"
	body, _ := json.Marshal(server.CompileRequest{IR: src})
	return body
}

// BenchmarkServeCold measures the uncached service path: parse, key,
// full pipeline, cache insert, JSON encode. Pair with
// BenchmarkServeCached in BENCH_<sha>.json to track cache leverage.
func BenchmarkServeCold(b *testing.B) {
	s := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := benchPost(b, s, coldKernel(i))
		var resp server.CompileResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Cache != "miss" {
			b.Fatalf("cold request hit the cache: %v %s", err, resp.Cache)
		}
	}
}

// BenchmarkServeCached measures the hit path: parse, key, LRU lookup,
// JSON encode — everything but the compile. The ≥10x gap to ServeCold
// is the cache's reason to exist.
func BenchmarkServeCached(b *testing.B) {
	s := benchServer(b)
	body := coldKernel(0)
	benchPost(b, s, body) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := benchPost(b, s, body)
		if i == 0 {
			var resp server.CompileResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Cache != "hit" {
				b.Fatalf("cached request missed: %v %s", err, resp.Cache)
			}
		}
	}
}

// BenchmarkServeBatchCached measures an 8-kernel /batch where every
// kernel is resident — the design-space-exploration steady state.
func BenchmarkServeBatchCached(b *testing.B) {
	s := benchServer(b)
	var kernels []server.BatchKernel
	for i := 0; i < 8; i++ {
		var req server.CompileRequest
		json.Unmarshal(coldKernel(i), &req)
		kernels = append(kernels, server.BatchKernel{IR: req.IR})
	}
	body, _ := json.Marshal(server.BatchRequest{Kernels: kernels, Jobs: 4})
	// Prime.
	req := httptest.NewRequest("POST", "/batch", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("prime: %d", w.Code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/batch", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
