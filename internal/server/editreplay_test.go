package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"reticle"
	"reticle/internal/bench"
	"reticle/internal/faults"
	"reticle/internal/hintcache"
	"reticle/internal/place"
	"reticle/internal/rerr"
	"reticle/internal/server"
)

// The edit-replay suite replays a realistic edit loop against a live
// service: a warm full compile of the tensordot 5x36 benchmark kernel,
// then the three canonical edits — a constant tweak (same structure:
// hint adoption, near-zero solver work), a wire rename (same canonical
// hash: full artifact-cache hit, no hint involvement), and a one-op
// insertion (new structure: cold solve, new hint recording). Throughout,
// every served artifact must be byte-identical to a cold compile of the
// same source on a fresh server — the hint cache is an accelerator, not
// an input.

// tensordotSrc renders the tensordot 5x36 benchmark kernel as IR text.
func tensordotSrc(t testing.TB) string {
	t.Helper()
	f, err := bench.TensorDot(5, 36)
	if err != nil {
		t.Fatal(err)
	}
	return f.String()
}

var (
	tempName = regexp.MustCompile(`\bt(\d+)\b`)
	firstOut = regexp.MustCompile(`y0:i8 = id\((\w+)\);`)
)

// constTweakN changes constant and register-init values only: the edit
// the hint cache exists for. Structure (ops, widths, connectivity) is
// untouched, so the structural hash — and the placement problem — are
// unchanged. n picks the new values, so successive edits are distinct
// artifacts that all share one hint bucket.
func constTweakN(src string, n int) string {
	out := strings.ReplaceAll(src, "const[0]", fmt.Sprintf("const[%d]", n))
	return strings.ReplaceAll(out, "reg[0]", fmt.Sprintf("reg[%d]", n+1))
}

func constTweak(src string) string { return constTweakN(src, 3) }

// wireRename alpha-renames every temporary. The canonical hash is
// alpha-invariant, so this is not even a new artifact: the server must
// answer from the artifact cache without consulting the hint store.
func wireRename(src string) string {
	return tempName.ReplaceAllString(src, "w$1")
}

// opInsert adds one instruction on the first output: a genuinely new
// structure that must compile cold and record a fresh hint entry.
func opInsert(src string) string {
	return firstOut.ReplaceAllString(src, "extra:i8 = add($1, $1) @??;\n    y0:i8 = id(extra);")
}

func compileOK(t *testing.T, h http.Handler, src string) server.CompileResponse {
	t.Helper()
	var resp server.CompileResponse
	if code := post(t, h, "/compile", server.CompileRequest{IR: src}, &resp); code != http.StatusOK {
		t.Fatalf("compile: status %d", code)
	}
	return resp
}

func statsOf(t *testing.T, h http.Handler) server.StatsResponse {
	t.Helper()
	var st server.StatsResponse
	if code := get(t, h, "/stats", &st); code != http.StatusOK {
		t.Fatalf("/stats: status %d", code)
	}
	return st
}

// detPayload strips the fields that legitimately differ between a cold
// and a hint-adopted compile of the same source (wall times, solver
// accounting, warm-start provenance), leaving exactly the deterministic
// artifact payload that must match byte for byte.
func detPayload(a server.ArtifactJSON) server.ArtifactJSON {
	a.CompileNS = 0
	a.Stages = server.StagesJSON{}
	a.SolverSteps = 0
	a.ShrinkProbes = 0
	a.ProbesSkipped = 0
	a.HintHits = 0
	a.HintTried = 0
	a.WarmStart = ""
	a.HintCacheHits = 0
	a.HintCacheStepsSaved = 0
	return a
}

func TestEditReplay(t *testing.T) {
	src := tensordotSrc(t)
	s := newTestServer(t, reticle.ServerOptions{})

	// Warm full compile.
	cold := compileOK(t, s, src)
	if cold.Cache != "miss" {
		t.Fatalf("first compile: cache %q, want miss", cold.Cache)
	}
	if cold.Artifact.WarmStart != "" || cold.Artifact.HintCacheHits != 0 {
		t.Fatalf("cold compile reports warm start %q / %d hint hits",
			cold.Artifact.WarmStart, cold.Artifact.HintCacheHits)
	}
	coldSteps := cold.Artifact.SolverSteps
	if coldSteps < 1 {
		t.Fatalf("cold tensordot compile spent %d solver steps, want >= 1", coldSteps)
	}
	st := statsOf(t, s)
	if st.HintCache == nil || st.HintCache.Records < 1 {
		t.Fatalf("warm compile recorded no hints: %+v", st.HintCache)
	}

	// Replaying the identical source is a full artifact-cache hit: the
	// pipeline does not run, so hint counters must not move (the
	// no-double-count contract).
	replay := compileOK(t, s, src)
	if replay.Cache != "hit" {
		t.Fatalf("replay: cache %q, want hit", replay.Cache)
	}
	if after := statsOf(t, s); after.Place.HintCacheHits != st.Place.HintCacheHits ||
		after.HintCache.Hits != st.HintCache.Hits {
		t.Fatalf("full cache hit moved hint counters: %+v -> %+v", st.Place, after.Place)
	}

	// Edit 1: constant tweak. New artifact, same structure — the hint
	// cache must adopt the recorded placement and skip the solver.
	tweaked := constTweak(src)
	if tweaked == src {
		t.Fatal("constTweak did not change the source")
	}
	hinted := compileOK(t, s, tweaked)
	if hinted.Cache != "miss" {
		t.Fatalf("tweaked compile: cache %q, want miss (new canonical hash)", hinted.Cache)
	}
	if hinted.Artifact.WarmStart != "adopted" {
		t.Fatalf("tweaked compile: warm_start %q, want adopted", hinted.Artifact.WarmStart)
	}
	if hinted.Artifact.HintCacheHits != 1 {
		t.Fatalf("tweaked compile: hint_cache_hits %d, want 1", hinted.Artifact.HintCacheHits)
	}
	if hinted.Artifact.HintCacheStepsSaved != coldSteps {
		t.Errorf("hint_cache_steps_saved = %d, want the cold cost %d",
			hinted.Artifact.HintCacheStepsSaved, coldSteps)
	}
	// The pinned budget: an adopted re-solve must spend under 1% of the
	// cold solver steps.
	if 100*hinted.Artifact.SolverSteps >= coldSteps {
		t.Errorf("hinted recompile spent %d solver steps, cold was %d — not under 1%%",
			hinted.Artifact.SolverSteps, coldSteps)
	}

	// Byte-identity: the hinted artifact must equal a cold compile of
	// the same edited source on a server that has never seen anything.
	fresh := newTestServer(t, reticle.ServerOptions{NoHintCache: true})
	ref := compileOK(t, fresh, tweaked)
	if ref.Artifact.WarmStart != "" {
		t.Fatalf("reference server used the hint cache: %q", ref.Artifact.WarmStart)
	}
	if detPayload(hinted.Artifact) != detPayload(ref.Artifact) {
		t.Errorf("hint-adopted artifact differs from cold compile of the same source:\n%+v\nvs\n%+v",
			detPayload(hinted.Artifact), detPayload(ref.Artifact))
	}
	if hinted.Key != ref.Key {
		t.Errorf("cache key diverged: %s vs %s", hinted.Key, ref.Key)
	}

	st = statsOf(t, s)
	if st.Place.HintCacheHits < 1 || st.Place.HintCacheStepsSaved < coldSteps {
		t.Errorf("stats after adoption: %+v, want >=1 hit and >=%d steps saved", st.Place, coldSteps)
	}
	if st.HintCache.Hits < 1 {
		t.Errorf("hint store reports %d hits after an adoption", st.HintCache.Hits)
	}

	// Edit 2: wire rename. Alpha-equivalent — a full artifact-cache hit
	// that must not touch the hint store at all.
	before := statsOf(t, s)
	renamed := compileOK(t, s, wireRename(tweaked))
	if renamed.Cache != "hit" {
		t.Fatalf("renamed compile: cache %q, want hit (alpha-invariant canonical hash)", renamed.Cache)
	}
	if renamed.Key != hinted.Key {
		t.Errorf("rename changed the cache key: %s vs %s", renamed.Key, hinted.Key)
	}
	if after := statsOf(t, s); after.Place.HintCacheHits != before.Place.HintCacheHits ||
		after.HintCache.Hits != before.HintCache.Hits ||
		after.HintCache.Records != before.HintCache.Records {
		t.Errorf("wire rename moved hint counters: %+v -> %+v", before.HintCache, after.HintCache)
	}

	// Edit 3: one-op insertion. New structure: cold solve, new recording.
	inserted := compileOK(t, s, opInsert(src))
	if inserted.Cache != "miss" {
		t.Fatalf("inserted-op compile: cache %q, want miss", inserted.Cache)
	}
	if inserted.Artifact.WarmStart == "adopted" {
		t.Fatal("structurally new program adopted a stale placement")
	}
	if inserted.Artifact.SolverSteps < 1 {
		t.Errorf("inserted-op compile reports %d solver steps, want a cold solve", inserted.Artifact.SolverSteps)
	}
	if after := statsOf(t, s); after.HintCache.Records != st.HintCache.Records+1 {
		t.Errorf("inserted-op compile: records %d -> %d, want one new hint entry",
			st.HintCache.Records, after.HintCache.Records)
	}
}

// TestEditReplayDegradedNeverSeeds: a budget-degraded compile must not
// record placement hints — otherwise one bad compile would make every
// structurally equal edit adopt the degraded layout forever.
func TestEditReplayDegradedNeverSeeds(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		place.FaultSolverBudget: {Class: rerr.Exhausted, Times: 1},
	})
	w := chaosPost(t, s, "/compile", server.CompileRequest{IR: maccSrc}, plan)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded compile: status %d\n%s", w.Code, w.Body.String())
	}
	var resp server.CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("degraded compile: %v", err)
	}
	if !resp.Artifact.Degraded {
		t.Fatal("armed solver-budget fault did not degrade the compile")
	}
	st := statsOf(t, s)
	if st.HintCache.Records != 0 {
		t.Fatalf("degraded compile recorded %d hint entries, want 0", st.HintCache.Records)
	}
	// The degraded artifact is not cached, so the same source compiles
	// again — cold, with no hint to adopt (nothing was recorded).
	clean := compileOK(t, s, maccSrc)
	if clean.Cache != "miss" {
		t.Fatalf("recompile after degradation: cache %q, want miss (degraded artifacts are never cached)", clean.Cache)
	}
	if clean.Artifact.WarmStart == "adopted" {
		t.Fatal("recompile after degradation adopted a hint that should not exist")
	}
	if clean.Artifact.Degraded {
		t.Fatal("clean recompile still degraded")
	}
}

// TestEditReplayCrashRestart (satellite: restart warmth): hints recorded
// before a restart survive on disk beside the artifact cache, and the
// first structural near-miss against the restarted server is served by
// an adoption, not a cold solve. The artifact cache directory is shared
// too, so the restart also keeps full artifact hits — the edited kernel
// is what proves the *hint* level reloaded.
func TestEditReplayCrashRestart(t *testing.T) {
	dir := t.TempDir()
	src := tensordotSrc(t)

	s1 := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	first := compileOK(t, s1, src)
	if first.Cache != "miss" {
		t.Fatalf("warm compile: cache %q", first.Cache)
	}
	coldSteps := first.Artifact.SolverSteps

	// "Crash": the first server is dropped without ceremony; a new
	// process opens the same disk root.
	s2 := newTestServer(t, reticle.ServerOptions{DiskDir: dir})
	hinted := compileOK(t, s2, constTweak(src))
	if hinted.Cache != "miss" {
		t.Fatalf("post-restart edited compile: cache %q, want miss", hinted.Cache)
	}
	if hinted.Artifact.WarmStart != "adopted" {
		t.Fatalf("post-restart edited compile: warm_start %q, want adopted from the disk hint", hinted.Artifact.WarmStart)
	}
	if hinted.Artifact.HintCacheStepsSaved != coldSteps {
		t.Errorf("restart lost the cold cost: steps_saved %d, want %d",
			hinted.Artifact.HintCacheStepsSaved, coldSteps)
	}
	st := statsOf(t, s2)
	if st.HintCache == nil || st.HintCache.Hits < 1 {
		t.Fatalf("restarted server reports no hint hit: %+v", st.HintCache)
	}
	if st.HintCache.Disk == nil || st.HintCache.Disk.Hits < 1 {
		t.Fatalf("hint did not come from the disk level: %+v", st.HintCache.Disk)
	}
}

// TestEditReplayHintCacheFaultDegrades (satellite: chaos): an armed
// hintcache/lookup fault point turns the edit loop into plain cold
// solves — 200s with valid artifacts, zero 5xx, zero adoptions — and
// the server recovers the moment the fault clears.
func TestEditReplayHintCacheFaultDegrades(t *testing.T) {
	src := tensordotSrc(t)
	s := newTestServer(t, reticle.ServerOptions{})
	if first := compileOK(t, s, src); first.Cache != "miss" {
		t.Fatalf("warm compile: cache %q", first.Cache)
	}

	for i, mode := range chaosModes {
		inj := mode.inj
		inj.Times = 0 // every lookup faults for the whole request
		plan := faults.NewPlan(map[faults.Point]faults.Injection{
			hintcache.FaultLookup: inj,
		})
		// A distinct constant value per mode: each is a fresh artifact
		// (cache miss) in the same hint bucket, so the lookup runs.
		edited := constTweakN(src, 10+i)
		w := chaosPost(t, s, "/compile", server.CompileRequest{IR: edited}, plan)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: hint cache fault surfaced as %d — must degrade to a cold solve\n%s",
				mode.name, w.Code, w.Body.String())
		}
		var resp server.CompileResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if resp.Cache != "miss" {
			t.Fatalf("%s: cache %q, want miss (distinct artifact)", mode.name, resp.Cache)
		}
		if resp.Artifact.WarmStart == "adopted" {
			t.Fatalf("%s: lookup fault did not suppress adoption", mode.name)
		}
		if resp.Artifact.Degraded {
			t.Fatalf("%s: hint cache fault degraded the artifact", mode.name)
		}
	}

	// Fault cleared: the next edit adopts again (the recordings above
	// kept the store warm — lookups failed, recordings did not).
	final := compileOK(t, s, constTweakN(src, 99))
	if final.Cache != "miss" || final.Artifact.WarmStart != "adopted" {
		t.Fatalf("after the fault cleared: cache %q warm_start %q, want a fresh adoption",
			final.Cache, final.Artifact.WarmStart)
	}
}
