package server_test

import (
	"testing"

	"reticle"
	"reticle/internal/cascade"
	"reticle/internal/isel"
	"reticle/internal/pipeline"
	"reticle/internal/server"
	"reticle/internal/target/ultrascale"
)

// chainIR is a kernel whose dot-product shape cascades into DSP macro
// chains, so a Shrink-enabled compile exercises probes and warm starts.
const chainIR = `
def dot(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, a3:i8, b3:i8) -> (y:i8) {
    m0:i8 = mul(a0, b0);
    m1:i8 = mul(a1, b1);
    m2:i8 = mul(a2, b2);
    m3:i8 = mul(a3, b3);
    s0:i8 = add(m0, m1);
    s1:i8 = add(s0, m2);
    y:i8 = add(s1, m3);
}`

// shrinkServer builds a single-family service whose config has Shrink
// enabled, so placement counters flow through artifacts and /stats.
func shrinkServer(t *testing.T) *server.Server {
	t.Helper()
	tgt, dev := ultrascale.Target(), ultrascale.Device()
	lib, err := isel.NewLibrary(tgt)
	if err != nil {
		t.Fatal(err)
	}
	cascades := map[string]cascade.Variants{}
	for base, v := range ultrascale.Cascades() {
		cascades[base] = cascade.Variants{Co: v.Co, Ci: v.Ci, CoCi: v.CoCi}
	}
	cfg := &pipeline.Config{
		Target: tgt, Device: dev, Lib: lib, Cascades: cascades, Shrink: true,
	}
	s, err := server.New(server.Options{}, map[string]*pipeline.Config{"shrink": cfg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStatsPlaceCounters: placement solver counters must be visible per
// artifact and accumulate in GET /stats across /compile and /batch.
func TestStatsPlaceCounters(t *testing.T) {
	s := shrinkServer(t)

	var cr server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: chainIR}, &cr); code != 200 {
		t.Fatalf("compile status %d", code)
	}
	if cr.Artifact.SolverSteps == 0 {
		t.Fatal("artifact solver_steps = 0, want > 0")
	}
	if cr.Artifact.ShrinkProbes == 0 && cr.Artifact.ProbesSkipped == 0 {
		t.Errorf("shrink config compiled with neither shrink_probes nor probes_skipped: %+v", cr.Artifact)
	}

	var st server.StatsResponse
	if code := get(t, s, "/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Place.SolverSteps != cr.Artifact.SolverSteps {
		t.Errorf("stats place.solver_steps = %d, want %d", st.Place.SolverSteps, cr.Artifact.SolverSteps)
	}
	if st.Place.ShrinkProbes != cr.Artifact.ShrinkProbes ||
		st.Place.ProbesSkipped != cr.Artifact.ProbesSkipped ||
		st.Place.HintHits != cr.Artifact.HintHits ||
		st.Place.HintTried != cr.Artifact.HintTried {
		t.Errorf("stats place section %+v does not match artifact %+v", st.Place, cr.Artifact)
	}

	// A /batch compile of a distinct kernel accumulates on top. (The
	// /compile kernel would be a cache hit and must not double-count.)
	var br server.BatchResponse
	req := server.BatchRequest{Kernels: []server.BatchKernel{
		{Name: "again", IR: chainIR},
		{Name: "fresh", IR: maccSrc},
	}}
	if code := post(t, s, "/batch", req, &br); code != 200 {
		t.Fatalf("batch status %d", code)
	}
	var st2 server.StatsResponse
	if code := get(t, s, "/stats", &st2); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	fresh := br.Results[1].Artifact
	want := st.Place.SolverSteps + fresh.SolverSteps
	if st2.Place.SolverSteps != want {
		t.Errorf("after batch, stats place.solver_steps = %d, want %d (cache hit must not double-count)",
			st2.Place.SolverSteps, want)
	}
}

// TestDefaultServerStatsHavePlaceSection: even without Shrink, the
// cumulative solver-steps gauge moves on every compiled kernel.
func TestDefaultServerStatsHavePlaceSection(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	var cr server.CompileResponse
	if code := post(t, s, "/compile", server.CompileRequest{IR: maccSrc}, &cr); code != 200 {
		t.Fatalf("compile status %d", code)
	}
	var st server.StatsResponse
	if code := get(t, s, "/stats", &st); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if st.Place.SolverSteps == 0 {
		t.Error("stats place.solver_steps = 0 after a compiled kernel, want > 0")
	}
}
