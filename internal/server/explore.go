package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"reticle/internal/explore"
	"reticle/internal/ir"
	"reticle/internal/pipeline"
	"reticle/internal/rerr"
)

// handleExplore sweeps one kernel's variant lattice through the batch
// pool, with every variant routed through the server's full cache
// hierarchy (memory LRU, disk, hint cache) — variants sharing a
// canonical subtree with each other, a previous sweep, or any /compile
// traffic are served, not recompiled.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	release, err := s.admit(r.Context())
	if err != nil {
		writeTypedError(w, err)
		return
	}
	defer release()
	if err := FaultExplore.Fire(r.Context()); err != nil {
		writeTypedError(w, err)
		return
	}
	var req ExploreRequest
	if code, err := s.decode(w, r, &req); err != nil {
		writeError(w, code, err.Error())
		return
	}
	famName, cfg, err := s.family(req.Family)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Jobs < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("jobs must be >= 0, got %d", req.Jobs))
		return
	}
	if req.MaxVariants < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("max_variants must be >= 0, got %d", req.MaxVariants))
		return
	}
	f, err := ir.Parse(req.IR)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parse: %v", err))
		return
	}
	ctx, cancel, err := s.deadline(r, req.TimeoutMS)
	if err != nil {
		writeDeadlineError(w, err)
		return
	}
	defer cancel()

	name := req.Name
	if name == "" {
		name = f.Name
	}
	opts := explore.Options{
		MaxVariants: s.exploreVariantCap(req.MaxVariants),
		Jobs:        s.exploreJobs(req.Jobs),
		Compile:     s.variantCompiler(),
	}

	if req.Stream || r.Header.Get("Accept") == ndjsonContentType {
		s.streamExplore(ctx, w, famName, name, cfg, f, opts)
		return
	}

	res, err := explore.Run(ctx, cfg, f, opts)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	s.countExplore(res)
	writeJSON(w, http.StatusOK, ExploreResponse{
		Name:     name,
		Family:   famName,
		Variants: exploreVariantsJSON(res.Variants),
		Frontier: exploreFrontierJSON(res.Frontier),
		Partial:  res.Partial,
		Stats:    exploreStatsJSON(res.Stats),
	})
}

// exploreVariantCap resolves a request's max_variants against the
// server cap: 0 takes the lattice default, oversized asks are clamped.
func (s *Server) exploreVariantCap(requested int) int {
	cap := s.opts.MaxExploreVariants
	if cap <= 0 || cap > explore.HardMaxVariants {
		cap = explore.HardMaxVariants
	}
	n := requested
	if n == 0 {
		n = explore.DefaultMaxVariants
	}
	if n > cap {
		n = cap
	}
	return n
}

// exploreJobs resolves a request's worker bound; the lattice ceiling
// also bounds fan-out, so a huge jobs value cannot spawn idle workers.
func (s *Server) exploreJobs(requested int) int {
	jobs := requested
	if jobs == 0 {
		jobs = s.opts.Jobs
	}
	if jobs > explore.HardMaxVariants {
		jobs = explore.HardMaxVariants
	}
	return jobs
}

// variantCompiler routes one variant through compileKernel — the same
// cache-checked, counted, coalesced path /compile uses. Artifacts
// served from the disk tier carry no in-memory form; they are
// reconstructed from the wire rendering, whose counters the estimator
// cross-check keeps equal to a fresh compile's.
func (s *Server) variantCompiler() explore.CompileFunc {
	return func(ctx context.Context, vcfg *pipeline.Config, v explore.Variant) (*pipeline.Artifact, bool, error) {
		ca, hit, _, err := s.compileKernel(ctx, vcfg, v.Func)
		if err != nil {
			return nil, false, err
		}
		if ca.art != nil {
			return ca.art, hit, nil
		}
		art, err := artifactFromWire(ca.rendered)
		return art, hit, err
	}
}

// artifactFromWire rebuilds the scoring-relevant fields of an artifact
// from its cached rendering.
func artifactFromWire(raw json.RawMessage) (*pipeline.Artifact, error) {
	var aj ArtifactJSON
	if err := json.Unmarshal(raw, &aj); err != nil {
		return nil, rerr.Wrap(rerr.Permanent, "cache_corrupt",
			"cached artifact could not be decoded", err)
	}
	return &pipeline.Artifact{
		Verilog:    aj.Verilog,
		LUTs:       aj.LUTs,
		DSPs:       aj.DSPs,
		FFs:        aj.FFs,
		Carries:    aj.Carries,
		CriticalNs: aj.CriticalNs,
		FMaxMHz:    aj.FMaxMHz,
		Degraded:   aj.Degraded,
	}, nil
}

// countExplore folds one finished sweep into the /stats totals.
func (s *Server) countExplore(res *explore.Result) {
	s.exploreSweeps.Add(1)
	s.exploreVariants.Add(int64(res.Stats.Variants))
	s.exploreHits.Add(int64(res.Stats.CacheHits))
	if res.Partial {
		s.explorePartial.Add(1)
	}
}

func exploreMetricsJSON(m explore.Metrics) ExploreMetrics {
	return ExploreMetrics{
		CriticalNs: m.CriticalNs,
		FMaxMHz:    m.FMaxMHz,
		Luts:       m.Luts,
		Dsps:       m.Dsps,
		FFs:        m.FFs,
		Carries:    m.Carries,
	}
}

// exploreVariantJSON renders one variant line. Failures cross the wire
// as the typed stable message and code only.
func exploreVariantJSON(vr explore.VariantResult) ExploreVariant {
	out := ExploreVariant{
		ID:       vr.ID,
		Desc:     vr.Desc,
		OK:       vr.Ok(),
		Degraded: vr.Degraded,
	}
	if vr.Ok() {
		m := exploreMetricsJSON(vr.Metrics)
		out.Metrics = &m
	} else {
		out.Error = rerr.Message(vr.Err)
		out.ErrorCode = rerr.CodeOf(vr.Err)
	}
	return out
}

func exploreVariantsJSON(vrs []explore.VariantResult) []ExploreVariant {
	out := make([]ExploreVariant, len(vrs))
	for i, vr := range vrs {
		out[i] = exploreVariantJSON(vr)
	}
	return out
}

func exploreFrontierJSON(fps []explore.FrontierPoint) []ExploreFrontierPoint {
	out := make([]ExploreFrontierPoint, len(fps))
	for i, fp := range fps {
		out[i] = ExploreFrontierPoint{ID: fp.ID, Metrics: exploreMetricsJSON(fp.Metrics)}
	}
	return out
}

func exploreStatsJSON(st explore.Stats) ExploreStatsJSON {
	return ExploreStatsJSON{
		Variants:       st.Variants,
		Succeeded:      st.Succeeded,
		Failed:         st.Failed,
		Degraded:       st.Degraded,
		CacheHits:      st.CacheHits,
		StagesSkipped:  st.StagesSkipped,
		Retried:        st.Retried,
		WallNS:         st.Wall.Nanoseconds(),
		VariantsPerSec: st.VariantsPerSec,
	}
}

// exploreFooter is the streaming sweep's final line: everything only
// known once the whole lattice has finished. Field order matches
// ExploreResponse so the stream splices back into the exact buffered
// body:
//
//	{"name":N,"family":F,"variants":[line1,...,lineN],"frontier":...,"partial":...,"stats":...}
type exploreFooter struct {
	Name     string                 `json:"name"`
	Family   string                 `json:"family"`
	Frontier []ExploreFrontierPoint `json:"frontier"`
	Partial  bool                   `json:"partial"`
	Stats    ExploreStatsJSON       `json:"stats"`
}

// streamExplore is the chunked /explore emitter: one NDJSON line per
// variant, flushed in lattice order as soon as the variant (and every
// variant before it) has a result, then the footer. Each line is
// byte-identical to the corresponding element of the buffered
// response's variants array.
func (s *Server) streamExplore(ctx context.Context, w http.ResponseWriter, famName, name string, cfg *pipeline.Config, f *ir.Func, opts explore.Options) {
	variants, err := explore.Enumerate(f, opts.MaxVariants)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	type state struct {
		once sync.Once
		done chan struct{}
		res  explore.VariantResult
	}
	states := make([]*state, len(variants))
	for i := range states {
		states[i] = &state{done: make(chan struct{})}
	}
	complete := func(i int, vr explore.VariantResult) {
		if i < 0 || i >= len(states) {
			return
		}
		st := states[i]
		st.once.Do(func() {
			st.res = vr
			close(st.done)
		})
	}
	opts.OnResult = func(vr explore.VariantResult) { complete(vr.Index, vr) }

	var (
		res     *explore.Result
		runErr  error
		runDone = make(chan struct{})
	)
	go func() {
		defer close(runDone)
		res, runErr = explore.Run(ctx, cfg, f, opts)
	}()

	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range states {
		var vr explore.VariantResult
		select {
		case <-states[i].done:
			vr = states[i].res
		case <-runDone:
			// Run returned before this variant reached a worker (batch
			// cancel) or the sweep as a whole failed: the authoritative
			// per-variant result — or the sweep error — stands in.
			switch {
			case runErr == nil && res != nil && i < len(res.Variants):
				vr = res.Variants[i]
			case runErr != nil:
				vr = explore.VariantResult{Variant: variants[i], Index: i, Err: runErr}
			default:
				vr = explore.VariantResult{Variant: variants[i], Index: i,
					Err: rerr.New(rerr.Unknown, "internal_error", "variant result missing")}
			}
		}
		enc.Encode(exploreVariantJSON(vr))
		if flusher != nil {
			flusher.Flush()
		}
	}
	<-runDone

	footer := exploreFooter{Name: name, Family: famName}
	if runErr == nil && res != nil {
		s.countExplore(res)
		footer.Frontier = exploreFrontierJSON(res.Frontier)
		footer.Partial = res.Partial
		footer.Stats = exploreStatsJSON(res.Stats)
	} else {
		// The status line is long gone; the footer carries the failure
		// marker (every line already has the typed code).
		footer.Partial = true
		footer.Stats = ExploreStatsJSON{Variants: len(variants), Failed: len(variants)}
	}
	enc.Encode(footer)
	if flusher != nil {
		flusher.Flush()
	}
}
