package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"reticle"
	"reticle/internal/faults"
	"reticle/internal/rerr"
	"reticle/internal/server"
)

// maccLattice is the pinned variant lattice for maccSrc: bind=any
// dedupes against the unannotated base, everything else is distinct.
var maccLattice = []string{
	"base", "bind=lut", "bind=dsp", "nocascade", "bind=dsp+nocascade",
	"flip=t0", "flip=t1",
}

// exploreDeterministic extracts the sections of an /explore body that
// the determinism contract covers byte-for-byte: everything except
// stats, whose wall-time fields are measured, not derived.
func exploreDeterministic(t testing.TB, body []byte) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("explore body is not JSON: %v\n%s", err, body)
	}
	return string(m["name"]) + "\n" + string(m["family"]) + "\n" +
		string(m["variants"]) + "\n" + string(m["frontier"]) + "\n" + string(m["partial"])
}

// TestExploreSweep: one buffered sweep over the macc lattice — every
// variant compiles, the frontier is non-empty, drawn from the sweep,
// and the stats add up.
func TestExploreSweep(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	var resp server.ExploreResponse
	if code := post(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Name != "macc" || resp.Family != "ultrascale" {
		t.Fatalf("name/family = %q/%q", resp.Name, resp.Family)
	}
	if len(resp.Variants) != len(maccLattice) {
		t.Fatalf("%d variants, want %d: %+v", len(resp.Variants), len(maccLattice), resp.Variants)
	}
	ids := make(map[string]bool)
	for i, v := range resp.Variants {
		if v.ID != maccLattice[i] {
			t.Fatalf("variant %d id %q, want %q", i, v.ID, maccLattice[i])
		}
		if !v.OK || v.Metrics == nil {
			t.Fatalf("variant %q failed: %+v", v.ID, v)
		}
		if v.Metrics.CriticalNs <= 0 || v.Metrics.Luts+v.Metrics.Dsps == 0 {
			t.Fatalf("variant %q has degenerate metrics: %+v", v.ID, *v.Metrics)
		}
		ids[v.ID] = true
	}
	if len(resp.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, fp := range resp.Frontier {
		if !ids[fp.ID] {
			t.Fatalf("frontier point %q is not a sweep variant", fp.ID)
		}
	}
	if resp.Partial {
		t.Fatal("clean sweep marked partial")
	}
	st := resp.Stats
	if st.Variants != len(maccLattice) || st.Succeeded != len(maccLattice) || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestExploreDeterministicColdWarmParallel is the determinism
// satellite: a cold server, the same server fully cache-warm, a
// jobs=8 parallel sweep, and a second cold server all serve
// byte-identical variants, frontier, and partial sections.
func TestExploreDeterministicColdWarmParallel(t *testing.T) {
	s1 := newTestServer(t, reticle.ServerOptions{})
	cold := postBody(t, s1, "/explore", server.ExploreRequest{IR: maccSrc}, nil)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: status %d: %s", cold.Code, cold.Body.String())
	}
	warm := postBody(t, s1, "/explore", server.ExploreRequest{IR: maccSrc}, nil)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm: status %d: %s", warm.Code, warm.Body.String())
	}
	par := postBody(t, s1, "/explore", server.ExploreRequest{IR: maccSrc, Jobs: 8}, nil)
	if par.Code != http.StatusOK {
		t.Fatalf("parallel: status %d: %s", par.Code, par.Body.String())
	}
	s2 := newTestServer(t, reticle.ServerOptions{})
	cold2 := postBody(t, s2, "/explore", server.ExploreRequest{IR: maccSrc, Jobs: 8}, nil)
	if cold2.Code != http.StatusOK {
		t.Fatalf("second cold: status %d: %s", cold2.Code, cold2.Body.String())
	}

	want := exploreDeterministic(t, cold.Body.Bytes())
	for name, w := range map[string]*bytes.Buffer{
		"warm": warm.Body, "parallel": par.Body, "second cold server": cold2.Body,
	} {
		if got := exploreDeterministic(t, w.Bytes()); got != want {
			t.Fatalf("%s sweep differs from cold sweep\ncold:\n%s\n%s:\n%s", name, want, name, got)
		}
	}

	// The warm sweep was served entirely from the cache hierarchy; the
	// cache attribution lives in stats, outside the deterministic bytes.
	var ws server.ExploreResponse
	if err := json.Unmarshal(warm.Body.Bytes(), &ws); err != nil {
		t.Fatal(err)
	}
	if ws.Stats.CacheHits != ws.Stats.Variants {
		t.Fatalf("warm sweep: %d/%d cache hits", ws.Stats.CacheHits, ws.Stats.Variants)
	}
}

// TestExploreStreamSplicesToBuffered: on a warm server, the NDJSON
// stream carries one line per variant, byte-identical to the buffered
// body's variants elements, and the footer completes the splice
//
//	{"name":N,"family":F,"variants":[line1,...,lineN],"frontier":...,"partial":...,"stats":...}
//
// matching the buffered body byte-for-byte up to the stats value (the
// last field, whose wall-time members are measured per run).
func TestExploreStreamSplicesToBuffered(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	if w := postBody(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, nil); w.Code != http.StatusOK {
		t.Fatalf("warm sweep: status %d: %s", w.Code, w.Body.String())
	}

	buffered := postBody(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, nil)
	if buffered.Code != http.StatusOK {
		t.Fatalf("buffered: status %d: %s", buffered.Code, buffered.Body.String())
	}
	streamed := postBody(t, s, "/explore", server.ExploreRequest{IR: maccSrc, Stream: true}, nil)
	if streamed.Code != http.StatusOK {
		t.Fatalf("streamed: status %d: %s", streamed.Code, streamed.Body.String())
	}
	if ct := streamed.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type %q, want application/x-ndjson", ct)
	}

	lines, footer := streamLines(t, streamed.Body.String())
	if len(lines) != len(maccLattice) {
		t.Fatalf("stream has %d variant lines, want %d", len(lines), len(maccLattice))
	}
	var foot struct {
		Name     json.RawMessage `json:"name"`
		Family   json.RawMessage `json:"family"`
		Frontier json.RawMessage `json:"frontier"`
		Partial  json.RawMessage `json:"partial"`
		Stats    json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal([]byte(footer), &foot); err != nil {
		t.Fatalf("footer is not JSON: %v\n%s", err, footer)
	}

	var splice bytes.Buffer
	splice.WriteString(`{"name":`)
	splice.Write(foot.Name)
	splice.WriteString(`,"family":`)
	splice.Write(foot.Family)
	splice.WriteString(`,"variants":[`)
	splice.WriteString(strings.Join(lines, ","))
	splice.WriteString(`],"frontier":`)
	splice.Write(foot.Frontier)
	splice.WriteString(`,"partial":`)
	splice.Write(foot.Partial)
	splice.WriteString(`,"stats":`)

	const statsMark = `,"stats":`
	bufBody := buffered.Body.String()
	cut := strings.LastIndex(bufBody, statsMark)
	if cut < 0 {
		t.Fatalf("buffered body has no stats field:\n%s", bufBody)
	}
	if got, want := splice.String(), bufBody[:cut+len(statsMark)]; got != want {
		t.Fatalf("stream splice differs from buffered body\nstream splice:\n%s\nbuffered:\n%s", got, want)
	}

	// The stats counters agree too; only the wall-time fields may move.
	var bs server.ExploreResponse
	if err := json.Unmarshal(buffered.Body.Bytes(), &bs); err != nil {
		t.Fatal(err)
	}
	var ss server.ExploreStatsJSON
	if err := json.Unmarshal(foot.Stats, &ss); err != nil {
		t.Fatal(err)
	}
	ss.WallNS, ss.VariantsPerSec = bs.Stats.WallNS, bs.Stats.VariantsPerSec
	if ss != bs.Stats {
		t.Fatalf("stream stats %+v, buffered %+v", ss, bs.Stats)
	}
}

// TestExploreStreamAcceptHeader: the Accept header triggers streaming
// like Stream:true does.
func TestExploreStreamAcceptHeader(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	w := postBody(t, s, "/explore", server.ExploreRequest{IR: maccSrc},
		map[string]string{"Accept": "application/x-ndjson"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	lines, footer := streamLines(t, w.Body.String())
	if len(lines) != len(maccLattice) || !strings.Contains(footer, `"frontier"`) {
		t.Fatalf("stream shape: %d lines, footer %s", len(lines), footer)
	}
}

// TestChaosExploreVariantFaults is the chaos satellite: transient
// per-variant faults are retried inside the pool and leave a clean
// sweep; permanent faults fail exactly their variants while the
// frontier still covers the survivors, marked partial — never a 5xx.
func TestChaosExploreVariantFaults(t *testing.T) {
	t.Run("permanent", func(t *testing.T) {
		s := newTestServer(t, reticle.ServerOptions{})
		plan := faults.NewPlan(map[faults.Point]faults.Injection{
			"explore/variant": {Class: rerr.Permanent, Times: 2},
		})
		w := chaosPost(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, plan)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp server.ExploreResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Partial {
			t.Fatal("faulted sweep not marked partial")
		}
		failed := make(map[string]bool)
		for _, v := range resp.Variants {
			if !v.OK {
				if v.ErrorCode != "fault_injected" {
					t.Fatalf("variant %q failed with code %q: %+v", v.ID, v.ErrorCode, v)
				}
				failed[v.ID] = true
			}
		}
		if len(failed) != 2 {
			t.Fatalf("%d variants failed, want 2", len(failed))
		}
		if len(resp.Frontier) == 0 {
			t.Fatal("no frontier over the survivors")
		}
		for _, fp := range resp.Frontier {
			if failed[fp.ID] {
				t.Fatalf("failed variant %q on the frontier", fp.ID)
			}
		}
		if resp.Stats.Failed != 2 || resp.Stats.Succeeded != len(maccLattice)-2 {
			t.Fatalf("stats %+v", resp.Stats)
		}
	})
	t.Run("transient", func(t *testing.T) {
		s := newTestServer(t, reticle.ServerOptions{})
		plan := faults.NewPlan(map[faults.Point]faults.Injection{
			"explore/variant": {Class: rerr.Transient, Times: 2},
		})
		w := chaosPost(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, plan)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp server.ExploreResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Partial || resp.Stats.Failed != 0 {
			t.Fatalf("transient faults not absorbed by retries: %+v", resp.Stats)
		}
		if resp.Stats.Retried < 2 {
			t.Fatalf("retried %d, want >= 2", resp.Stats.Retried)
		}
	})
	t.Run("panic", func(t *testing.T) {
		s := newTestServer(t, reticle.ServerOptions{})
		plan := faults.NewPlan(map[faults.Point]faults.Injection{
			"explore/variant": {Panic: true, Times: 1},
		})
		w := chaosPost(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, plan)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		var resp server.ExploreResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Partial || resp.Stats.Failed != 1 {
			t.Fatalf("panic not contained to one variant: %+v", resp.Stats)
		}
		if strings.Contains(w.Body.String(), "goroutine") {
			t.Fatal("stack frames leaked to the wire")
		}
	})
	t.Run("handler", func(t *testing.T) {
		s := newTestServer(t, reticle.ServerOptions{})
		plan := faults.NewPlan(map[faults.Point]faults.Injection{
			"server/explore": {Class: rerr.Permanent, Times: 1},
		})
		w := chaosPost(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, plan)
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422: %s", w.Code, w.Body.String())
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
			t.Fatal(err)
		}
		if er.ErrorCode != "fault_injected" {
			t.Fatalf("error code %q", er.ErrorCode)
		}
	})
}

// TestChaosExploreStreamFaults: a streamed sweep under permanent
// per-variant faults still emits every line plus a partial footer.
func TestChaosExploreStreamFaults(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		"explore/variant": {Class: rerr.Permanent, Times: 2},
	})
	data, err := json.Marshal(server.ExploreRequest{IR: maccSrc, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/explore", bytes.NewReader(data))
	req = req.WithContext(faults.WithPlan(req.Context(), plan))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	lines, footer := streamLines(t, w.Body.String())
	if len(lines) != len(maccLattice) {
		t.Fatalf("%d lines, want %d", len(lines), len(maccLattice))
	}
	failed := 0
	for _, line := range lines {
		var v server.ExploreVariant
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line is not JSON: %v\n%s", err, line)
		}
		if !v.OK {
			failed++
			if v.ErrorCode != "fault_injected" {
				t.Fatalf("variant %q failed with code %q", v.ID, v.ErrorCode)
			}
		}
	}
	if failed != 2 {
		t.Fatalf("%d failed lines, want 2", failed)
	}
	var foot struct {
		Partial  bool                          `json:"partial"`
		Frontier []server.ExploreFrontierPoint `json:"frontier"`
	}
	if err := json.Unmarshal([]byte(footer), &foot); err != nil {
		t.Fatalf("footer is not JSON: %v\n%s", err, footer)
	}
	if !foot.Partial || len(foot.Frontier) == 0 {
		t.Fatalf("footer %s", footer)
	}
}

// TestExploreStatsCounters: /stats carries the explore totals.
func TestExploreStatsCounters(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	var st server.StatsResponse
	get(t, s, "/stats", &st)
	if st.Explore.Sweeps != 0 || st.Explore.Variants != 0 {
		t.Fatalf("fresh server explore totals %+v", st.Explore)
	}

	if code := post(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, nil); code != http.StatusOK {
		t.Fatalf("first sweep: status %d", code)
	}
	get(t, s, "/stats", &st)
	if st.Explore.Sweeps != 1 || st.Explore.Variants != int64(len(maccLattice)) || st.Explore.Partial != 0 {
		t.Fatalf("after one sweep: %+v", st.Explore)
	}
	if st.Kernels == 0 {
		t.Fatal("variant compiles did not count as kernels")
	}

	if code := post(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, nil); code != http.StatusOK {
		t.Fatalf("second sweep: status %d", code)
	}
	get(t, s, "/stats", &st)
	if st.Explore.Sweeps != 2 || st.Explore.VariantCacheHits < int64(len(maccLattice)) {
		t.Fatalf("after warm sweep: %+v", st.Explore)
	}

	plan := faults.NewPlan(map[faults.Point]faults.Injection{
		"explore/variant": {Class: rerr.Permanent, Times: 1},
	})
	if w := chaosPost(t, s, "/explore", server.ExploreRequest{IR: maccSrc}, plan); w.Code != http.StatusOK {
		t.Fatalf("faulted sweep: status %d: %s", w.Code, w.Body.String())
	}
	get(t, s, "/stats", &st)
	if st.Explore.Sweeps != 3 || st.Explore.Partial != 1 {
		t.Fatalf("after partial sweep: %+v", st.Explore)
	}
}

// TestExploreVariantCap: per-request max_variants truncates the lattice
// keeping the base first; the server-level cap clamps oversized asks.
func TestExploreVariantCap(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	var resp server.ExploreResponse
	if code := post(t, s, "/explore", server.ExploreRequest{IR: maccSrc, MaxVariants: 3}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Variants) != 3 || resp.Variants[0].ID != "base" {
		t.Fatalf("capped sweep: %+v", resp.Variants)
	}

	capped := newTestServer(t, reticle.ServerOptions{MaxExploreVariants: 2})
	if code := post(t, capped, "/explore", server.ExploreRequest{IR: maccSrc, MaxVariants: 50}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Variants) != 2 {
		t.Fatalf("server cap ignored: %d variants", len(resp.Variants))
	}
}

// TestExploreBadRequests: malformed sweeps are rejected with a 400
// before any compile starts.
func TestExploreBadRequests(t *testing.T) {
	s := newTestServer(t, reticle.ServerOptions{})
	cases := []struct {
		name string
		req  server.ExploreRequest
	}{
		{"negative jobs", server.ExploreRequest{IR: maccSrc, Jobs: -1}},
		{"negative max_variants", server.ExploreRequest{IR: maccSrc, MaxVariants: -1}},
		{"unknown family", server.ExploreRequest{IR: maccSrc, Family: "stratix"}},
		{"parse failure", server.ExploreRequest{IR: "def broken( {"}},
		{"empty ir", server.ExploreRequest{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := post(t, s, "/explore", tc.req, nil); code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
		})
	}
	t.Run("unknown field", func(t *testing.T) {
		if code := postRaw(t, s, "/explore", []byte(`{"ir":"x","surprise":1}`), nil); code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", code)
		}
	})
}
