package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reticle"
	"reticle/internal/server"
	"reticle/internal/target/agilex"
	"reticle/internal/target/ultrascale"
)

// FuzzCompileHandler throws arbitrary bytes at POST /compile: whatever
// arrives — broken JSON, IR-shaped garbage, assembly or TDL text in the
// ir field, huge bodies — the handler must answer with a JSON document
// and a sane status code, never panic, and never hang (the server
// deadline bounds every compile).
//
// Seeds cover the existing fuzz corpora shapes: IR parser seeds, asm
// opcode spellings for both families, and both bundled TDL sources, all
// wrapped as request JSON, plus raw non-JSON noise.
func FuzzCompileHandler(f *testing.F) {
	// IR-shaped seeds (from the ir fuzz corpus).
	irSeeds := []string{
		`def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }`,
		`def v(a:i8<4>) -> (y:i8) { y:i8 = slice[2](a); }`,
		`def r(a:i8, en:bool) -> (y:i8) { y:i8 = reg[-3](a, en) @lut; }`,
		`def broken(`,
		`def f() -> () {}`,
		"def \x00 bogus",
		`def f(a:i8) -> (y:i8) { y:i8 = sll[99](a); }`,
	}
	for _, src := range irSeeds {
		for _, fam := range []string{"", "ultrascale", "agilex", "ice40"} {
			body, _ := json.Marshal(server.CompileRequest{IR: src, Family: fam})
			f.Add(body)
		}
	}
	// Assembly-shaped seeds (asm fuzz corpus opcodes, both families):
	// parse as IR must fail cleanly, not crash.
	asmSeeds := []string{
		`def f(a:i8, b:i8) -> (y:i8) { y:i8 = lut_add(a, b) @lut(0, 0); }`,
		`def f(a:i8, b:i8, c:i8) -> (y:i8) { y:i8 = dsp_muladd(a, b, c) @dsp(??, ??); }`,
		`def f(a:i8, b:i8, c:i8) -> (y:i8) { y:i8 = alm_add(a, b) @alm(1, 2); }`,
	}
	for _, src := range asmSeeds {
		body, _ := json.Marshal(server.CompileRequest{IR: src})
		f.Add(body)
	}
	// TDL sources for both families in the ir field.
	for _, src := range []string{ultrascale.Source(), agilex.Source()} {
		body, _ := json.Marshal(server.CompileRequest{IR: src})
		f.Add(body)
	}
	// Structurally hostile bodies.
	f.Add([]byte(`{"ir": `))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"ir": 42}`))
	f.Add([]byte(`{"ir": "x", "timeout_ms": -9}`))
	f.Add([]byte(`{"ir": "x", "unknown": {"deep": [1,2,3]}}`))
	f.Add([]byte(strings.Repeat(`{"ir":"`, 512)))

	s, err := reticle.NewServer(reticle.ServerOptions{
		MaxBodyBytes:   1 << 16,
		DefaultTimeout: 5 * time.Second,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/compile", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req) // must not panic or hang
		if w.Code < 200 || w.Code > 599 {
			t.Fatalf("status %d out of range", w.Code)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("non-JSON response (status %d): %q", w.Code, w.Body.String())
		}
		if w.Code != http.StatusOK {
			var er server.ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("status %d without a structured error: %q", w.Code, w.Body.String())
			}
		}
	})
}
