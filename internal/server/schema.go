package server

import (
	"encoding/json"
	"runtime"

	"reticle/internal/cache"
	"reticle/internal/hintcache"
	"reticle/internal/pipeline"
	"reticle/internal/stagecache"
)

// CompileRequest is the POST /compile body.
type CompileRequest struct {
	// Name labels the response; empty defaults to the parsed function name.
	Name string `json:"name,omitempty"`
	// Family selects the target config ("ultrascale", "agilex"); empty
	// means the server's default family.
	Family string `json:"family,omitempty"`
	// IR is the kernel source text (Fig. 5a syntax).
	IR string `json:"ir"`
	// TimeoutMS bounds this compile; 0 means the server default, negative
	// is a 400.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ArtifactJSON is the wire form of a completed compilation. Asm, Placed,
// and Verilog are the exact bytes serial reticle.Compile renders — the
// service suite asserts byte equality.
type ArtifactJSON struct {
	Asm     string `json:"asm"`
	Placed  string `json:"placed"`
	Verilog string `json:"verilog"`

	LUTs    int `json:"luts"`
	DSPs    int `json:"dsps"`
	FFs     int `json:"ffs"`
	Carries int `json:"carries"`

	CriticalNs float64 `json:"critical_ns"`
	FMaxMHz    float64 `json:"fmax_mhz"`

	// CompileNS and Stages are the wall times of the compile that
	// produced the artifact; on a cache hit they describe the original
	// compile, not this request.
	CompileNS     int64      `json:"compile_ns"`
	Stages        StagesJSON `json:"stages"`
	CascadeChains int        `json:"cascade_chains"`
	SolverSteps   int        `json:"solver_steps"`

	// Shrink-pass solver counters (see pipeline.PlaceStats): probes that
	// ran the solver, probes answered by revalidating the previous
	// solution, and warm-start hint effectiveness. Zero (omitted) for
	// configs without Shrink.
	ShrinkProbes  int `json:"shrink_probes,omitempty"`
	ProbesSkipped int `json:"probes_skipped,omitempty"`
	HintHits      int `json:"hint_hits,omitempty"`
	HintTried     int `json:"hint_tried,omitempty"`

	// Cross-request hint cache (see internal/hintcache): WarmStart is
	// "adopted" when placement took a recorded solution outright,
	// HintCacheHits is 1 for such compiles, and HintCacheStepsSaved is
	// the cold solver steps the adoption avoided. All omitted for cold
	// compiles, so pre-hint-cache artifact JSON is byte-unchanged.
	WarmStart           string `json:"warm_start,omitempty"`
	HintCacheHits       int    `json:"hint_cache_hits,omitempty"`
	HintCacheStepsSaved int    `json:"hint_cache_steps_saved,omitempty"`

	// Degraded marks an artifact placed by the greedy fallback after the
	// solver exhausted its budget: valid (satcheck-verified) but
	// unoptimized, and never served from cache. DegradedReason says which
	// budget ran out.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// StagesJSON breaks a compile (or a cumulative total) into per-stage
// wall time, in nanoseconds.
type StagesJSON struct {
	SelectNS  int64 `json:"select_ns"`
	CascadeNS int64 `json:"cascade_ns"`
	PlaceNS   int64 `json:"place_ns"`
	CodegenNS int64 `json:"codegen_ns"`
	TimingNS  int64 `json:"timing_ns"`
}

// CompileResponse is the POST /compile success body.
type CompileResponse struct {
	Name   string `json:"name"`
	Family string `json:"family"`
	// Cache is "hit" when the artifact was served without running the
	// pipeline for this request (resident entry or coalesced onto an
	// in-flight compile), "miss" when this request compiled it.
	Cache string `json:"cache"`
	// Key is the content-addressed cache key (hex SHA-256 over the
	// canonical IR hash and the config fingerprint).
	Key      string       `json:"key"`
	Artifact ArtifactJSON `json:"artifact"`
}

// compileResponseWire is the server-side mirror of CompileResponse: the
// artifact rides as pre-rendered bytes (marshaled once at cache-insert
// time), so hits skip re-encoding. The emitted JSON is identical to
// marshaling a CompileResponse.
type compileResponseWire struct {
	Name     string          `json:"name"`
	Family   string          `json:"family"`
	Cache    string          `json:"cache"`
	Key      string          `json:"key"`
	Artifact json.RawMessage `json:"artifact"`
}

// BatchKernel is one kernel in a POST /batch body.
type BatchKernel struct {
	Name string `json:"name,omitempty"`
	IR   string `json:"ir"`
}

// BatchRequest is the POST /batch body.
type BatchRequest struct {
	Family string `json:"family,omitempty"`
	// Jobs bounds worker goroutines; 0 means the server default,
	// negative is a 400 (batch.ErrInvalidJobs).
	Jobs int `json:"jobs,omitempty"`
	// TimeoutMS is the per-kernel compile deadline; 0 means none,
	// negative is a 400 (batch.ErrInvalidTimeout).
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
	Kernels   []BatchKernel `json:"kernels"`
	// Stream selects the chunked NDJSON response framing (equivalent to
	// sending "Accept: application/x-ndjson"): one result line per
	// kernel, flushed in submission order as kernels complete, then a
	// footer line {"family":...,"stats":{...}}. Large sweeps stream at
	// worker-pool pace instead of buffering the whole result set.
	Stream bool `json:"stream,omitempty"`
}

// BatchKernelResult is one kernel's outcome, at its submission index.
type BatchKernelResult struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	// Cache is "hit"/"miss"; empty when the kernel failed to parse.
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
	// ErrorCode is the stable machine-readable failure identifier for a
	// failed kernel (see ErrorResponse.ErrorCode).
	ErrorCode string       `json:"error_code,omitempty"`
	Artifact  ArtifactJSON `json:"artifact,omitempty"`
}

// batchKernelResultWire / batchResponseWire mirror their exported
// counterparts with pre-rendered artifact bytes; kernels that failed
// (no artifact) omit the field, which clients decode as a zero
// ArtifactJSON.
type batchKernelResultWire struct {
	Name      string          `json:"name"`
	OK        bool            `json:"ok"`
	Cache     string          `json:"cache,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorCode string          `json:"error_code,omitempty"`
	Artifact  json.RawMessage `json:"artifact,omitempty"`
}

type batchResponseWire struct {
	Family  string                  `json:"family"`
	Results []batchKernelResultWire `json:"results"`
	Stats   BatchStatsJSON          `json:"stats"`
}

// BatchStatsJSON aggregates a /batch run.
type BatchStatsJSON struct {
	Kernels   int `json:"kernels"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	// Compiled counts kernels that went through the pipeline (the rest
	// were cache hits or parse failures).
	Compiled      int     `json:"compiled"`
	WallNS        int64   `json:"wall_ns"`
	KernelsPerSec float64 `json:"kernels_per_sec"`
	// Degraded counts kernels served with a fallback-placed artifact;
	// Retried counts extra compile attempts spent on transient failures.
	Degraded int `json:"degraded,omitempty"`
	Retried  int `json:"retried,omitempty"`
	// StagesSkipped totals pipeline stages served from the stage memo
	// across the batch's compiled kernels (cross-kernel sharing).
	StagesSkipped int `json:"stages_skipped,omitempty"`
}

// BatchResponse is the POST /batch success body.
type BatchResponse struct {
	Family  string              `json:"family"`
	Results []BatchKernelResult `json:"results"`
	Stats   BatchStatsJSON      `json:"stats"`
}

// ErrorResponse is every non-2xx body. Error and ErrorCode are stable
// wire strings built from the typed taxonomy (internal/rerr) — internal
// fmt.Errorf chains, file paths, and panic traces never appear here.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
	// ErrorCode is the stable machine-readable failure identifier
	// ("deadline_exceeded", "placement_unsat", "admission_rejected", ...).
	ErrorCode string `json:"error_code,omitempty"`
	// Class is the retry semantics: "transient", "permanent",
	// "resource-exhausted", or "unknown".
	Class string `json:"class,omitempty"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status   string   `json:"status"`
	UptimeMS int64    `json:"uptime_ms"`
	Families []string `json:"families"`
}

// CacheStatsJSON is the cache section of GET /stats.
type CacheStatsJSON struct {
	Entries    int     `json:"entries"`
	MaxEntries int     `json:"max_entries"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Coalesced  uint64  `json:"coalesced"`
	Evictions  uint64  `json:"evictions"`
	Computes   uint64  `json:"computes"`
	InFlight   int     `json:"in_flight"`
	HitRate    float64 `json:"hit_rate"`
}

// DiskStatsJSON is the persistent second-level cache section of GET
// /stats, present only when the server runs with a disk cache. The
// counters reset with the process; the artifacts do not.
type DiskStatsJSON struct {
	Entries     int    `json:"entries"`
	Bytes       int64  `json:"bytes"`
	MaxBytes    int64  `json:"max_bytes"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
	ReadErrors  uint64 `json:"read_errors"`
	Evictions   uint64 `json:"evictions"`
	// Corrupt counts entries whose decode failed (checksum mismatch,
	// truncation, foreign key); Quarantined counts the subset preserved
	// under DIR/quarantine/ for postmortem.
	Corrupt     uint64 `json:"disk_corrupt"`
	Quarantined uint64 `json:"disk_quarantined"`
	// ScrubRuns / ScrubScanned count Scrub() walks and the entries they
	// verified (see POST /scrub and -scrub-on-start).
	ScrubRuns    uint64 `json:"scrub_runs"`
	ScrubScanned uint64 `json:"scrub_scanned"`
}

// ScrubResponse is the POST /scrub body: one completed integrity walk.
type ScrubResponse struct {
	Scanned   int   `json:"scanned"`
	Corrupt   int   `json:"corrupt"`
	Bytes     int64 `json:"bytes"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// PlaceStatsJSON is the cumulative placement-solver section of GET
// /stats: totals across every compiled kernel (cache hits excluded,
// like Stages).
type PlaceStatsJSON struct {
	SolverSteps   int `json:"solver_steps"`
	ShrinkProbes  int `json:"shrink_probes"`
	ProbesSkipped int `json:"probes_skipped"`
	HintHits      int `json:"hint_hits"`
	HintTried     int `json:"hint_tried"`
	// HintCacheHits counts compiles whose placement was adopted from the
	// cross-request hint cache; HintCacheStepsSaved totals the cold
	// solver steps those adoptions avoided. Full artifact-cache hits
	// skip the pipeline and count in neither (no double-count).
	HintCacheHits       int `json:"hint_cache_hits"`
	HintCacheStepsSaved int `json:"hint_cache_steps_saved"`
}

// HintCacheStatsJSON is the placement hint store section of GET /stats,
// present when the server runs with the hint cache enabled (the
// default). Lookups happen only on artifact-cache misses, so Hits +
// Misses tracks compiled kernels, not requests.
type HintCacheStatsJSON struct {
	Entries    int    `json:"entries"`
	MaxEntries int    `json:"max_entries"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Records    uint64 `json:"records"`
	// Disk describes the persistent hint level (DiskDir/hints), present
	// only when the server runs with -disk.
	Disk *DiskStatsJSON `json:"disk,omitempty"`
}

// StageCounterJSON is one pipeline stage's memo counters inside the
// stage_cache section of GET /stats.
type StageCounterJSON struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Stores uint64 `json:"stores"`
	// Bytes totals payload bytes accepted by Store for this stage
	// (cumulative; LRU evictions do not subtract).
	Bytes int64 `json:"bytes"`
}

// StageCacheStatsJSON is the per-stage compilation memo section of GET
// /stats, present when the server runs with the stage cache enabled
// (the default). Lookups happen only on artifact-cache misses, so the
// per-stage hit/miss sums track compiled kernels, not requests.
type StageCacheStatsJSON struct {
	Entries    int `json:"entries"`
	MaxEntries int `json:"max_entries"`
	// StagesSkipped totals pipeline stages served from the memo instead
	// of recomputing, across /compile, /batch, and /explore (an
	// output-stage hit skips both codegen and timing, so it counts 2).
	StagesSkipped int64            `json:"stages_skipped"`
	Select        StageCounterJSON `json:"select"`
	Cascade       StageCounterJSON `json:"cascade"`
	Place         StageCounterJSON `json:"place"`
	Output        StageCounterJSON `json:"output"`
	// Disk describes the persistent stage level (DiskDir/stages),
	// present only when the server runs with -disk.
	Disk *DiskStatsJSON `json:"disk,omitempty"`
}

// StageCacheTotalsJSON is the flattened stage-memo sum the shard router
// aggregates across backends.
type StageCacheTotalsJSON struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Stores        uint64 `json:"stores"`
	Bytes         int64  `json:"bytes"`
	StagesSkipped int64  `json:"stages_skipped"`
}

// Totals flattens the per-stage counters for tier-level aggregation.
func (j StageCacheStatsJSON) Totals() StageCacheTotalsJSON {
	t := StageCacheTotalsJSON{StagesSkipped: j.StagesSkipped}
	for _, s := range []StageCounterJSON{j.Select, j.Cascade, j.Place, j.Output} {
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.Stores += s.Stores
		t.Bytes += s.Bytes
	}
	return t
}

// MemStatsJSON is the runtime memory/GC snapshot section of GET /stats
// (both the compile service and the shard router report one), so cache
// sizing and stage-memo wins are attributable against live heap and GC
// pressure without attaching a profiler. For the full picture, run with
// -pprof and scrape /debug/pprof.
type MemStatsJSON struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	HeapObjects     uint64  `json:"heap_objects"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	Frees           uint64  `json:"frees"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalNS  uint64  `json:"gc_pause_total_ns"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
	NextGCBytes     uint64  `json:"next_gc_bytes"`
	Goroutines      int     `json:"goroutines"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	Requests        int64          `json:"requests"`
	Kernels         int64          `json:"kernels"`
	InFlightKernels int64          `json:"in_flight_kernels"`
	UptimeMS        int64          `json:"uptime_ms"`
	Families        []string       `json:"families"`
	Cache           CacheStatsJSON `json:"cache"`
	Disk            *DiskStatsJSON `json:"disk,omitempty"`
	Stages          StagesJSON     `json:"stages"`
	Place           PlaceStatsJSON `json:"place"`
	// HintCache snapshots the placement hint store, omitted when the
	// server runs with the hint cache disabled.
	HintCache *HintCacheStatsJSON `json:"hint_cache,omitempty"`
	// StageCache snapshots the per-stage compilation memo, omitted when
	// the server runs with the stage cache disabled.
	StageCache *StageCacheStatsJSON `json:"stage_cache,omitempty"`
	// Mem is a point-in-time runtime.MemStats/GC snapshot.
	Mem MemStatsJSON `json:"mem"`
	// Explore accumulates /explore sweep counters.
	Explore ExploreTotalsJSON `json:"explore"`
}

// DiskStatsJSONFrom renders disk-cache counters for the wire; the shard
// router reuses it for its local disk section.
func DiskStatsJSONFrom(ds cache.DiskStats) DiskStatsJSON {
	return DiskStatsJSON{
		Entries:      ds.Entries,
		Bytes:        ds.Bytes,
		MaxBytes:     ds.MaxBytes,
		Hits:         ds.Hits,
		Misses:       ds.Misses,
		Writes:       ds.Writes,
		WriteErrors:  ds.WriteErrors,
		ReadErrors:   ds.ReadErrors,
		Evictions:    ds.Evictions,
		Corrupt:      ds.Corrupt,
		Quarantined:  ds.Quarantined,
		ScrubRuns:    ds.ScrubRuns,
		ScrubScanned: ds.ScrubScanned,
	}
}

// artifactJSON renders an artifact for the wire.
func artifactJSON(a *pipeline.Artifact) ArtifactJSON {
	return ArtifactJSON{
		Asm:            a.Asm.String(),
		Placed:         a.Placed.String(),
		Verilog:        a.Verilog,
		LUTs:           a.LUTs,
		DSPs:           a.DSPs,
		FFs:            a.FFs,
		Carries:        a.Carries,
		CriticalNs:     a.CriticalNs,
		FMaxMHz:        a.FMaxMHz,
		CompileNS:      a.CompileDur.Nanoseconds(),
		Stages:         stageJSON(a.Stages),
		CascadeChains:  a.CascadeChains,
		SolverSteps:    a.SolverSteps,
		ShrinkProbes:   a.Place.ShrinkProbes,
		ProbesSkipped:  a.Place.ProbesSkipped,
		HintHits:       a.Place.HintHits,
		HintTried:      a.Place.HintTried,
		WarmStart:      a.WarmStart,
		Degraded:       a.Degraded,
		DegradedReason: a.DegradedReason,

		HintCacheHits:       a.Place.HintCacheHits,
		HintCacheStepsSaved: a.Place.HintCacheStepsSaved,
	}
}

// placeJSON renders cumulative placement counters for the wire.
func placeJSON(ps pipeline.PlaceStats) PlaceStatsJSON {
	return PlaceStatsJSON{
		SolverSteps:   ps.SolverSteps,
		ShrinkProbes:  ps.ShrinkProbes,
		ProbesSkipped: ps.ProbesSkipped,
		HintHits:      ps.HintHits,
		HintTried:     ps.HintTried,

		HintCacheHits:       ps.HintCacheHits,
		HintCacheStepsSaved: ps.HintCacheStepsSaved,
	}
}

// hintCacheJSON renders the hint store snapshot for the wire.
func hintCacheJSON(hs hintcache.Stats) HintCacheStatsJSON {
	out := HintCacheStatsJSON{
		Entries:    hs.Entries,
		MaxEntries: hs.MaxEntries,
		Hits:       hs.Hits,
		Misses:     hs.Misses,
		Records:    hs.Records,
	}
	if hs.Disk != nil {
		dj := DiskStatsJSONFrom(*hs.Disk)
		out.Disk = &dj
	}
	return out
}

// stageCounterJSON renders one stage's memo counters for the wire.
func stageCounterJSON(st stagecache.StageStats) StageCounterJSON {
	return StageCounterJSON{
		Hits:   st.Hits,
		Misses: st.Misses,
		Stores: st.Stores,
		Bytes:  st.Bytes,
	}
}

// stageCacheJSON renders the stage memo snapshot for the wire. skips is
// the server-side stages-skipped accumulator (compileKernel fill paths
// plus /batch and /explore aggregation), not a store counter: the store
// counts lookups, the server counts stages it did not recompute.
func stageCacheJSON(st stagecache.Stats, skips int64) StageCacheStatsJSON {
	out := StageCacheStatsJSON{
		Entries:       st.Entries,
		MaxEntries:    st.MaxEntries,
		StagesSkipped: skips,
		Select:        stageCounterJSON(st.Select),
		Cascade:       stageCounterJSON(st.Cascade),
		Place:         stageCounterJSON(st.Place),
		Output:        stageCounterJSON(st.Output),
	}
	if st.Disk != nil {
		dj := DiskStatsJSONFrom(*st.Disk)
		out.Disk = &dj
	}
	return out
}

// MemStatsJSONNow snapshots the Go runtime for the wire; the shard
// router reuses it for its own mem section.
func MemStatsJSONNow() MemStatsJSON {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemStatsJSON{
		HeapAllocBytes:  ms.HeapAlloc,
		HeapSysBytes:    ms.HeapSys,
		HeapObjects:     ms.HeapObjects,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		Frees:           ms.Frees,
		NumGC:           ms.NumGC,
		GCPauseTotalNS:  ms.PauseTotalNs,
		GCCPUFraction:   ms.GCCPUFraction,
		NextGCBytes:     ms.NextGC,
		Goroutines:      runtime.NumGoroutine(),
	}
}

// stageJSON renders stage times for the wire.
func stageJSON(st pipeline.StageTimes) StagesJSON {
	return StagesJSON{
		SelectNS:  st.Select.Nanoseconds(),
		CascadeNS: st.Cascade.Nanoseconds(),
		PlaceNS:   st.Place.Nanoseconds(),
		CodegenNS: st.Codegen.Nanoseconds(),
		TimingNS:  st.Timing.Nanoseconds(),
	}
}

// ExploreRequest is the POST /explore body: one kernel whose
// annotation/configuration variants the server sweeps through the
// batch tier, returning every variant's score plus the Pareto frontier.
type ExploreRequest struct {
	// Name labels the response; empty defaults to the parsed function name.
	Name string `json:"name,omitempty"`
	// Family selects the target config; empty means the server default.
	Family string `json:"family,omitempty"`
	// IR is the kernel source text.
	IR string `json:"ir"`
	// TimeoutMS bounds the whole sweep; 0 means the server default,
	// negative is a 400.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Jobs bounds concurrent variant compiles; 0 means the server
	// default, negative is a 400.
	Jobs int `json:"jobs,omitempty"`
	// MaxVariants bounds the variant lattice; 0 means the default
	// (explore.DefaultMaxVariants), negative is a 400. Values past the
	// server's -explore-variants cap are clamped, not rejected.
	MaxVariants int `json:"max_variants,omitempty"`
	// Stream selects the chunked NDJSON framing (equivalent to sending
	// "Accept: application/x-ndjson"): one line per variant in lattice
	// order as compiles finish, then a footer with frontier + stats.
	Stream bool `json:"stream,omitempty"`
}

// ExploreMetrics is one variant's deterministic score: critical path
// from the timing analyzer, area from the estimator over the placed
// assembly (held equal to the Verilog generator's counts by the
// cross-check suite).
type ExploreMetrics struct {
	CriticalNs float64 `json:"critical_ns"`
	FMaxMHz    float64 `json:"fmax_mhz"`
	Luts       int     `json:"luts"`
	Dsps       int     `json:"dsps"`
	FFs        int     `json:"ffs"`
	Carries    int     `json:"carries"`
}

// ExploreVariant is one variant's outcome, at its lattice position.
// Only deterministic fields appear — cache attribution and durations
// live in ExploreStatsJSON — so a cold sweep, a warm sweep, and a
// parallel sweep serialize to identical bytes.
type ExploreVariant struct {
	ID   string `json:"id"`
	Desc string `json:"desc,omitempty"`
	OK   bool   `json:"ok"`
	// Degraded marks a budget-truncated placement: scored and reported,
	// but excluded from the frontier (its layout is wall-clock-dependent).
	Degraded  bool            `json:"degraded,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorCode string          `json:"error_code,omitempty"`
	Metrics   *ExploreMetrics `json:"metrics,omitempty"`
}

// ExploreFrontierPoint is one non-dominated variant. The frontier is
// ordered canonically: objective vectors (critical_ns, luts, carries,
// dsps) ascending, ID as the tie-break.
type ExploreFrontierPoint struct {
	ID      string         `json:"id"`
	Metrics ExploreMetrics `json:"metrics"`
}

// ExploreStatsJSON aggregates one sweep.
type ExploreStatsJSON struct {
	Variants  int `json:"variants"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed,omitempty"`
	Degraded  int `json:"degraded,omitempty"`
	// CacheHits counts variants served from a cache tier (memory or
	// disk) instead of compiling.
	CacheHits int `json:"cache_hits"`
	// StagesSkipped totals pipeline stages served from the stage memo
	// across the sweep's compiled variants (shared-prefix forking);
	// whole-artifact cache hits count in CacheHits, not here.
	StagesSkipped  int     `json:"stages_skipped,omitempty"`
	Retried        int     `json:"retried,omitempty"`
	WallNS         int64   `json:"wall_ns"`
	VariantsPerSec float64 `json:"variants_per_sec"`
}

// ExploreResponse is the POST /explore success body. Partial marks a
// sweep where some variants failed (e.g. transient faults that outlived
// the retry budget): the frontier covers the survivors.
type ExploreResponse struct {
	Name     string                 `json:"name"`
	Family   string                 `json:"family"`
	Variants []ExploreVariant       `json:"variants"`
	Frontier []ExploreFrontierPoint `json:"frontier"`
	Partial  bool                   `json:"partial"`
	Stats    ExploreStatsJSON       `json:"stats"`
}

// ExploreTotalsJSON is the cumulative explore section of GET /stats.
type ExploreTotalsJSON struct {
	Sweeps           int64 `json:"sweeps"`
	Variants         int64 `json:"variants"`
	VariantCacheHits int64 `json:"variant_cache_hits"`
	Partial          int64 `json:"partial"`
}
