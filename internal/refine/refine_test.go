package refine

import (
	"testing"

	"reticle/internal/asm"
	"reticle/internal/device"
	"reticle/internal/ir"
	"reticle/internal/isel"
	"reticle/internal/place"
	"reticle/internal/target/ultrascale"
	"reticle/internal/timing"
)

// chainSrc is a combinational DSP chain whose routes dominate timing, so
// relocation has something to improve.
const chainSrc = `
def chain(a:i8, b:i8, c:i8) -> (t3:i8) {
    t0:i8 = dsp_add_i8(a, b) @dsp(??, ??);
    t1:i8 = dsp_add_i8(t0, c) @dsp(2, 100);
    t2:i8 = dsp_add_i8(t1, a) @dsp(??, ??);
    t3:i8 = dsp_add_i8(t2, b) @dsp(??, ??);
}
`

func TestRefineImprovesOrMatches(t *testing.T) {
	f, err := asm.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	dev := ultrascale.Device()
	res, err := Place(f, ultrascale.Target(), dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AfterNs > res.BeforeNs+1e-9 {
		t.Errorf("refinement made timing worse: %.3f -> %.3f", res.BeforeNs, res.AfterNs)
	}
	// t1 is pinned far away (row 100); its free neighbors should move
	// toward it, improving on the naive low-packed placement.
	if res.Moves == 0 {
		t.Errorf("no moves accepted; before %.3f after %.3f", res.BeforeNs, res.AfterNs)
	}
	if res.AfterNs >= res.BeforeNs {
		t.Errorf("expected strict improvement around the pinned outlier: %.3f -> %.3f",
			res.BeforeNs, res.AfterNs)
	}
	if !res.Placed.Resolved() {
		t.Error("refined program unresolved")
	}
}

func TestRefineRespectsPins(t *testing.T) {
	f, err := asm.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	dev := ultrascale.Device()
	res, err := Place(f, ultrascale.Target(), dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Placed.Body {
		if in.Dest == "t1" {
			if in.Loc.X.Off != 2 || in.Loc.Y.Off != 100 {
				t.Errorf("pinned t1 moved to %s", in.Loc)
			}
		}
	}
}

func TestRefineKeepsPlacementValid(t *testing.T) {
	f, err := asm.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	dev := ultrascale.Device()
	res, err := Place(f, ultrascale.Target(), dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[3]int]string{}
	for _, in := range res.Placed.Body {
		if in.IsWire() {
			continue
		}
		key := [3]int{int(in.Loc.Prim), int(in.Loc.X.Off), int(in.Loc.Y.Off)}
		if prev, dup := seen[key]; dup {
			t.Fatalf("%s and %s share a slice after refinement", prev, in.Dest)
		}
		seen[key] = in.Dest
		if in.Loc.X.Off < 0 || int(in.Loc.X.Off) >= dev.NumCols(in.Loc.Prim) ||
			in.Loc.Y.Off < 0 || int(in.Loc.Y.Off) >= dev.Height {
			t.Fatalf("%s out of range: %s", in.Dest, in.Loc)
		}
	}
}

func TestRefineOnCascadedProgramMovesNothingConstrained(t *testing.T) {
	// Cascade chains carry coordinate variables, so their members must be
	// immovable. Build one via the compiler pipeline.
	irf, err := ir.Parse(`
def dot(a0:i8, b0:i8, a1:i8, b1:i8, in:i8) -> (y:i8) {
    m0:i8 = mul(a0, b0) @dsp;
    s0:i8 = add(m0, in) @dsp;
    m1:i8 = mul(a1, b1) @dsp;
    y:i8 = add(m1, s0) @dsp;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	af, err := isel.Select(irf, ultrascale.Target(), isel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Manually constrain both instructions into a chain shape.
	for i := range af.Body {
		if af.Body[i].IsWire() {
			continue
		}
		af.Body[i].Loc.X = asm.VarPlus("x", 0)
		af.Body[i].Loc.Y = asm.VarPlus("y", int64(i))
	}
	dev := ultrascale.Device()
	res, err := Place(af, ultrascale.Target(), dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Errorf("moved %d constrained instructions", res.Moves)
	}
}

func TestRefineAgainstPlainPlacement(t *testing.T) {
	// Sanity: refinement never loses to plain placement under the same
	// timing model.
	f, err := asm.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	dev := ultrascale.Device()
	plain, err := place.Place(f, dev, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainRep, err := timing.Analyze(plain.Fn, ultrascale.Target(), dev, timing.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Place(f, ultrascale.Target(), dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.AfterNs > plainRep.CriticalNs+1e-9 {
		t.Errorf("refined %.3f worse than plain %.3f", ref.AfterNs, plainRep.CriticalNs)
	}
}

func TestRefineTinyDevice(t *testing.T) {
	dev, err := device.Standard("tiny", 2, 1, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := asm.Parse(`
def f(a:i8, b:i8) -> (y:i8) {
    t0:i8 = dsp_add_i8(a, b) @dsp(??, ??);
    y:i8 = dsp_add_i8(t0, a) @dsp(??, ??);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(f, ultrascale.Target(), dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AfterNs <= 0 {
		t.Errorf("result: %+v", res)
	}
}
