// Package refine implements timing-driven placement refinement — the
// future-work direction the paper names explicitly: "There is plenty of
// exploration needed in the layout space i.e., incorporating timing
// information that is beyond the scope of this work" (§1).
//
// The refiner starts from a solver placement (package place), runs static
// timing (package timing), and greedily relocates instructions on the
// critical path to free slices that shorten it, iterating until no move
// helps or the budget runs out. Only instructions the source program left
// fully unconstrained (@prim(??, ??)) are moved; user pins and cascade
// chains keep the spots the constraints gave them.
package refine

import (
	"context"
	"fmt"

	"reticle/internal/asm"
	"reticle/internal/device"
	"reticle/internal/ir"
	"reticle/internal/place"
	"reticle/internal/tdl"
	"reticle/internal/timing"
)

// Options bounds the refinement.
type Options struct {
	// MaxIters bounds improvement rounds; 0 means 20.
	MaxIters int
	// Candidates bounds how many alternative slices are tried per movable
	// critical instruction per round; 0 means 24.
	Candidates int
	// Place configures the initial solver placement.
	Place place.Options
	// Timing overrides the delay model.
	Timing timing.Options
}

// Result reports the refinement outcome.
type Result struct {
	// Placed is the refined device-specific program.
	Placed *asm.Func
	// BeforeNs and AfterNs are the critical paths around refinement.
	BeforeNs float64
	AfterNs  float64
	// Moves counts accepted relocations.
	Moves int
	// SolverSteps, ShrinkProbes, ProbesSkipped, HintHits, and HintTried
	// propagate the placement solver's work counters (see place.Result;
	// ShrinkProbes is place.Result.ShrinkIters) so the timing-driven path
	// reports them like the plain path does.
	SolverSteps   int
	ShrinkProbes  int
	ProbesSkipped int
	HintHits      int
	HintTried     int
	// Degraded and DegradedReason propagate the placement stage's
	// greedy-fallback marker (see place.Result).
	Degraded       bool
	DegradedReason string
	// Anchors and WarmStart propagate the placement stage's recorded
	// solution and warm-start mode (see place.Result). Refinement moves
	// instructions after the fact, but the anchors describe the solver
	// placement the refiner started from — exactly what a future
	// structurally identical compile wants to adopt.
	Anchors   *place.Anchors
	WarmStart string
}

// Place runs solver placement followed by timing-driven refinement.
func Place(f *asm.Func, target *tdl.Target, dev *device.Device, opts Options) (*Result, error) {
	return PlaceContext(context.Background(), f, target, dev, opts)
}

// PlaceContext is Place under a context: the placement solve observes
// cancellation mid-search, and budget exhaustion degrades to the greedy
// fallback (still refined afterwards — refinement only needs a valid
// starting point).
func PlaceContext(ctx context.Context, f *asm.Func, target *tdl.Target, dev *device.Device, opts Options) (*Result, error) {
	if opts.MaxIters == 0 {
		opts.MaxIters = 20
	}
	if opts.Candidates == 0 {
		opts.Candidates = 24
	}
	if opts.Timing.UnitNs == 0 {
		opts.Timing = timing.DefaultOptions()
	}
	res, err := place.PlaceContext(ctx, f, dev, opts.Place)
	if err != nil {
		return nil, err
	}
	cur := res.Fn

	// movable marks body indices whose location the source left fully
	// wildcarded.
	movable := make([]bool, len(f.Body))
	for i, in := range f.Body {
		if !in.IsWire() && in.Loc.X.Wild && in.Loc.Y.Wild {
			movable[i] = true
		}
	}
	byDest := make(map[string]int, len(cur.Body))
	for i, in := range cur.Body {
		byDest[in.Dest] = i
	}

	// occupancy tracks used slices per primitive.
	occupied := map[ir.Resource]map[int]bool{
		ir.ResLut: {},
		ir.ResDsp: {},
	}
	for _, in := range cur.Body {
		if in.IsWire() {
			continue
		}
		id, err := dev.SliceID(in.Loc.Prim, int(in.Loc.X.Off), int(in.Loc.Y.Off))
		if err != nil {
			return nil, fmt.Errorf("refine: %s: %w", in.Dest, err)
		}
		occupied[in.Loc.Prim][id] = true
	}

	rep, err := timing.Analyze(cur, target, dev, opts.Timing)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Placed: cur, BeforeNs: rep.CriticalNs, AfterNs: rep.CriticalNs,
		SolverSteps: res.SolverSteps, ShrinkProbes: res.ShrinkIters,
		ProbesSkipped: res.ProbesSkipped, HintHits: res.HintHits, HintTried: res.HintTried,
		Degraded: res.Degraded, DegradedReason: res.DegradedReason,
		Anchors: res.Anchors, WarmStart: res.WarmStart,
	}

	for iter := 0; iter < opts.MaxIters; iter++ {
		improved := false
		for _, dest := range rep.Path {
			bi, ok := byDest[dest]
			if !ok || cur.Body[bi].IsWire() || !movable[bi] {
				continue
			}
			in := &cur.Body[bi]
			prim := in.Loc.Prim
			curID, err := dev.SliceID(prim, int(in.Loc.X.Off), int(in.Loc.Y.Off))
			if err != nil {
				return nil, err
			}
			bestNs := out.AfterNs
			bestID := curID
			tried := 0
			for id := 0; id < dev.Capacity(prim) && tried < opts.Candidates; id++ {
				if occupied[prim][id] {
					continue
				}
				tried++
				x, y := dev.SliceCoords(id)
				in.Loc.X, in.Loc.Y = asm.At(int64(x)), asm.At(int64(y))
				cand, err := timing.Analyze(cur, target, dev, opts.Timing)
				if err != nil {
					return nil, err
				}
				if cand.CriticalNs < bestNs-1e-9 {
					bestNs = cand.CriticalNs
					bestID = id
				}
			}
			x, y := dev.SliceCoords(bestID)
			in.Loc.X, in.Loc.Y = asm.At(int64(x)), asm.At(int64(y))
			if bestID != curID {
				delete(occupied[prim], curID)
				occupied[prim][bestID] = true
				out.AfterNs = bestNs
				out.Moves++
				improved = true
			}
		}
		if !improved {
			break
		}
		rep, err = timing.Analyze(cur, target, dev, opts.Timing)
		if err != nil {
			return nil, err
		}
		out.AfterNs = rep.CriticalNs
	}
	return out, nil
}
