// Differential co-simulation: every bundled example program, compiled on
// every bundled family, must mean what its IR means. The compiled
// assembly (selected, cascade-rewritten, and placed) is expanded back to
// IR through its TDL semantics and interpreted (Algorithm 1) next to the
// source program over randomized-but-seeded input traces — the paper's
// translation-validation discipline applied to the shipping targets.
package reticle

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reticle/internal/interp"
	"reticle/internal/irgen"
	"reticle/internal/target/agilex"
)

// cosimFamilies are the bundled (target, device) pairs under test.
func cosimFamilies() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"ultrascale", Options{}},
		{"agilex", Options{Target: agilex.Target(), Device: agilex.Device()}},
	}
}

// examplePrograms loads every examples/programs/*.ret source.
func examplePrograms(t *testing.T) map[string]string {
	t.Helper()
	dir := filepath.Join("examples", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	progs := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ret") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		progs[strings.TrimSuffix(e.Name(), ".ret")] = string(src)
	}
	if len(progs) == 0 {
		t.Fatalf("no .ret programs under %s", dir)
	}
	return progs
}

func TestDifferentialCoSimExamples(t *testing.T) {
	const cycles = 24
	progs := examplePrograms(t)
	for _, fam := range cosimFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			c, err := NewCompilerWith(fam.opts)
			if err != nil {
				t.Fatal(err)
			}
			seed := int64(1)
			for name, src := range progs {
				f, err := ParseIR(src)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				art, err := c.Compile(f)
				if err != nil {
					t.Fatalf("%s: compile: %v", name, err)
				}
				rng := rand.New(rand.NewSource(seed))
				seed++
				trace := irgen.RandomTrace(rng, f, cycles)
				want, err := Interpret(f, trace)
				if err != nil {
					t.Fatalf("%s: reference interp: %v", name, err)
				}
				// Both the family-specific program and the placed,
				// cascade-rewritten one must agree with the source.
				for stage, af := range map[string]*AsmFunc{"asm": art.Asm, "placed": art.Placed} {
					got, err := InterpretAsm(af, c.Target(), trace)
					if err != nil {
						t.Fatalf("%s/%s: co-sim interp: %v", name, stage, err)
					}
					if !interp.Equal(want, got) {
						t.Errorf("%s/%s: compiled semantics diverge from IR\nasm:\n%s", name, stage, af)
					}
				}
			}
		})
	}
}

// TestDifferentialCoSimRandom extends the oracle to generated programs on
// both families. The generator emits only ultrascale-shaped programs, but
// every shape it produces has an agilex selection too, so the same corpus
// cross-checks both targets.
func TestDifferentialCoSimRandom(t *testing.T) {
	const seeds = 12
	for _, fam := range cosimFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			c, err := NewCompilerWith(fam.opts)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(7000 + seed))
				f := irgen.Generate(rng, irgen.Config{Instrs: 12, WithVectors: true})
				art, err := c.Compile(f)
				if err != nil {
					t.Fatalf("seed %d: compile: %v\n%s", seed, err, f)
				}
				trace := irgen.RandomTrace(rng, f, 10)
				want, err := Interpret(f, trace)
				if err != nil {
					t.Fatalf("seed %d: reference interp: %v", seed, err)
				}
				got, err := InterpretAsm(art.Placed, c.Target(), trace)
				if err != nil {
					t.Fatalf("seed %d: co-sim interp: %v", seed, err)
				}
				if !interp.Equal(want, got) {
					t.Errorf("seed %d: compiled semantics diverge from IR\nsource:\n%s\nasm:\n%s",
						seed, f, art.Placed)
				}
			}
		})
	}
}

// TestDifferentialCoSimReannotation is the explore tentpole's semantic
// guarantee: flipping a kernel's resource annotations — the transform
// the /explore variant lattice is built from — never changes what the
// compiled design computes. Every example program is re-bound all-@dsp
// and all-@lut, compiled on both families, and co-simulated against
// the source IR over the same seeded traces.
func TestDifferentialCoSimReannotation(t *testing.T) {
	const cycles = 16
	progs := examplePrograms(t)
	policies := []struct {
		name   string
		policy BindPolicy
	}{
		{"dsp", PreferDsp},
		{"lut", PreferLut},
	}
	for _, fam := range cosimFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			c, err := NewCompilerWith(fam.opts)
			if err != nil {
				t.Fatal(err)
			}
			seed := int64(11)
			for name, src := range progs {
				f, err := ParseIR(src)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				rng := rand.New(rand.NewSource(seed))
				seed++
				trace := irgen.RandomTrace(rng, f, cycles)
				want, err := Interpret(f, trace)
				if err != nil {
					t.Fatalf("%s: reference interp: %v", name, err)
				}
				for _, p := range policies {
					g, err := Bind(f, p.policy)
					if err != nil {
						t.Fatalf("%s: bind=%s: %v", name, p.name, err)
					}
					art, err := c.Compile(g)
					if err != nil {
						t.Fatalf("%s: bind=%s: compile: %v", name, p.name, err)
					}
					got, err := InterpretAsm(art.Placed, c.Target(), trace)
					if err != nil {
						t.Fatalf("%s: bind=%s: co-sim interp: %v", name, p.name, err)
					}
					if !interp.Equal(want, got) {
						t.Errorf("%s: bind=%s diverges from the source IR\nasm:\n%s",
							name, p.name, art.Placed)
					}
				}
			}
		})
	}
}
