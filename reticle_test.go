package reticle

import (
	"math/rand"
	"strings"
	"testing"

	"reticle/internal/ir"
)

func TestCompileStringMulAdd(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.CompileString(`
def ma(a:i8, b:i8, c:i8) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    y:i8 = add(t0, c) @??;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if art.DSPs != 1 {
		t.Errorf("DSPs = %d, want 1 fused muladd", art.DSPs)
	}
	if !strings.Contains(art.Verilog, "DSP48E2") {
		t.Errorf("verilog missing DSP instance:\n%s", art.Verilog)
	}
	if art.FMaxMHz <= 0 || art.CompileDur <= 0 {
		t.Errorf("artifact metrics: %+v", art)
	}
	if !art.Placed.Resolved() {
		t.Error("placed program unresolved")
	}
}

func TestCascadeChainsReported(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	src := `
def dot(a0:i8, b0:i8, a1:i8, b1:i8, in:i8) -> (y:i8) {
    m0:i8 = mul(a0, b0) @dsp;
    s0:i8 = add(m0, in) @dsp;
    m1:i8 = mul(a1, b1) @dsp;
    y:i8 = add(m1, s0) @dsp;
}
`
	art, err := c.CompileString(src)
	if err != nil {
		t.Fatal(err)
	}
	if art.CascadeChains != 1 {
		t.Errorf("chains = %d", art.CascadeChains)
	}
	noCas, err := NewCompilerWith(Options{NoCascade: true})
	if err != nil {
		t.Fatal(err)
	}
	art2, err := noCas.CompileString(src)
	if err != nil {
		t.Fatal(err)
	}
	if art2.CascadeChains != 0 {
		t.Errorf("NoCascade still rewrote %d chains", art2.CascadeChains)
	}
	if art.CriticalNs >= art2.CriticalNs {
		t.Errorf("cascading did not help: %.3f vs %.3f", art.CriticalNs, art2.CriticalNs)
	}
}

func TestSelectionErrorSurfaces(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.CompileString(`
def f(a:i8) -> (y:i8) {
    y:i8 = not(a) @dsp;
}
`)
	if err == nil || !strings.Contains(err.Error(), "selection") {
		t.Errorf("err = %v", err)
	}
}

func TestBehavioralBackends(t *testing.T) {
	f, err := ParseIR(`def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @??; }`)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BehavioralVerilog(f, false)
	if err != nil {
		t.Fatal(err)
	}
	hint, err := BehavioralVerilog(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(base, "use_dsp") || !strings.Contains(hint, "use_dsp") {
		t.Error("hint attribute misplaced")
	}
}

func TestBaselineCompile(t *testing.T) {
	f, err := ParseIR(`def f(a:i8, b:i8) -> (y:i8) { y:i8 = mul(a, b) @??; }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BaselineCompile(f, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.DspsUsed != 1 {
		t.Errorf("baseline DSPs = %d", res.DspsUsed)
	}
}

// TestEndToEndTranslationValidation compiles a pipelined program, expands
// the selected assembly back to IR, and checks trace equivalence with the
// source — the whole-pipeline semantic check.
func TestEndToEndTranslationValidation(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	src := `
def pipe(a:i8, b:i8, k:i8, en:bool) -> (y:i8, flag:bool) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, k) @??;
    r:i8 = reg[0](t1, en) @??;
    t2:i8 = sub(r, a) @??;
    y:i8 = mux(en, t2, k) @lut;
    flag:bool = gt(y, k) @lut;
}
`
	f, err := ParseIR(src)
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ExpandAsm(art.Asm, c.Target())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	tr := make(Trace, 30)
	for i := range tr {
		tr[i] = Step{
			"a":  ir.ScalarValue(ir.Int(8), rng.Int63()),
			"b":  ir.ScalarValue(ir.Int(8), rng.Int63()),
			"k":  ir.ScalarValue(ir.Int(8), rng.Int63()),
			"en": ir.BoolValue(rng.Intn(2) == 0),
		}
	}
	want, err := Interpret(f, tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Interpret(back, tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for k, v := range want[i] {
			if !got[i][k].Equal(v) {
				t.Fatalf("cycle %d: %s = %s, want %s", i, k, got[i][k], v)
			}
		}
	}
}

func TestBuilderThroughFacade(t *testing.T) {
	b := NewBuilder("facade")
	i8 := ir.Int(8)
	x := b.Input("x", i8)
	y := b.Add(i8, x, x, ir.ResAny)
	b.Output(y, i8)
	f, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(f); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyOption(t *testing.T) {
	c, err := NewCompilerWith(Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.CompileString(`
def f(a:i8, b:i8, c:i8) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    y:i8 = add(t0, c) @??;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if art.DSPs == 0 && art.LUTs == 0 {
		t.Error("greedy produced nothing")
	}
}

func TestTargetAccessors(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	if c.Target() != UltraScale() || c.Device() == nil {
		t.Error("accessors wrong")
	}
	if XCZU3EG().Name != "xczu3eg" {
		t.Error("device name")
	}
}

func TestTimingDrivenOption(t *testing.T) {
	src := `
def chain(a:i8, b:i8, c:i8) -> (t2:i8) {
    t0:i8 = add(a, b) @dsp;
    t1:i8 = add(t0, c) @dsp;
    t2:i8 = add(t1, a) @dsp;
}
`
	plain, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	refined, err := NewCompilerWith(Options{TimingDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := plain.CompileString(src)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := refined.CompileString(src)
	if err != nil {
		t.Fatal(err)
	}
	if a2.CriticalNs > a1.CriticalNs+1e-9 {
		t.Errorf("timing-driven placement worse: %.3f vs %.3f", a2.CriticalNs, a1.CriticalNs)
	}
	if !a2.Placed.Resolved() {
		t.Error("unresolved")
	}
}

func TestFacadeHelpers(t *testing.T) {
	i8, err := ParseIRType("i8")
	if err != nil || i8.Width() != 8 {
		t.Fatalf("ParseIRType: %v %v", i8, err)
	}
	v4, err := ParseIRType("i8<4>")
	if err != nil || v4.Lanes() != 4 {
		t.Fatalf("ParseIRType vector: %v %v", v4, err)
	}
	if ScalarValue(i8, 200).Scalar() != -56 {
		t.Error("ScalarValue wrap")
	}
	if !BoolValue(true).Bool() {
		t.Error("BoolValue")
	}
	if VectorValue(v4, 1, 2, 3, 4).Lane(2) != 3 {
		t.Error("VectorValue")
	}
	if _, err := ParseAsm(`def f(a:i8,b:i8,c:i8) -> (y:i8) { y:i8 = ma(a,b,c) @dsp(0,0); }`); err != nil {
		t.Errorf("ParseAsm: %v", err)
	}
	target, err := ParseTDL("mini", `add[lut, 1, 1](a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b); }`)
	if err != nil || target.Len() != 1 {
		t.Errorf("ParseTDL: %v", err)
	}
}

func TestFacadePasses(t *testing.T) {
	f, err := ParseIR(`
def p(a:i8, b:i8) -> (y:i8) {
    two:i8 = const[2];
    dead:i8 = mul(a, a) @??;
    t0:i8 = mul(a, two) @??;
    t1:i8 = add(t0, b) @??;
    t2:i8 = add(t0, b) @??;
    y:i8 = and(t1, t2) @??;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	folded, n, err := Fold(f)
	if err != nil || n == 0 {
		t.Fatalf("Fold: %d, %v", n, err)
	}
	merged, n, err := CSE(folded)
	if err != nil || n == 0 {
		t.Fatalf("CSE: %d, %v", n, err)
	}
	clean, n, err := DCE(merged)
	if err != nil || n == 0 {
		t.Fatalf("DCE: %d, %v", n, err)
	}
	opt, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Body) > len(clean.Body) {
		t.Errorf("Optimize (%d instrs) worse than manual chain (%d)",
			len(opt.Body), len(clean.Body))
	}
	// The mul-by-two became a shift: only wire ops plus the and remain...
	for _, in := range opt.Body {
		if in.Op == ir.OpMul {
			t.Errorf("mul survived optimization:\n%s", opt)
		}
	}
}

func TestFacadeInterpretAsm(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.CompileString(`
def f(a:i8, b:i8) -> (y:i8) { y:i8 = add(a, b) @dsp; }
`)
	if err != nil {
		t.Fatal(err)
	}
	i8, _ := ParseIRType("i8")
	out, err := InterpretAsm(art.Asm, c.Target(), Trace{
		{"a": ScalarValue(i8, 20), "b": ScalarValue(i8, 22)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0]["y"].Scalar() != 42 {
		t.Errorf("y = %s", out[0]["y"])
	}
}
