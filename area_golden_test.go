// Golden area counts: every bundled example program, compiled on every
// bundled family under both binding extremes, must land on exactly the
// LUT/carry/FF/DSP budget recorded here — and the standalone area
// estimator (internal/timing.EstimateArea), which /explore uses to
// score variants, must agree with the codegen-counted artifact exactly.
package reticle

import (
	"fmt"
	"math/rand"
	"testing"

	"reticle/internal/irgen"
	"reticle/internal/timing"
)

// areaGoldens pins the resource counts of the bundled examples. The
// "default" policy leaves annotations as written (the examples lean on
// @?? selector choice, which prefers DSPs for arithmetic); "lut"
// re-binds every compute instruction onto the fabric.
var areaGoldens = []struct {
	family, program, policy  string
	luts, carries, ffs, dsps int
}{
	{"ultrascale", "counter", "default", 0, 0, 0, 1},
	{"ultrascale", "counter", "lut", 8, 1, 8, 0},
	{"ultrascale", "fig6", "default", 0, 0, 0, 1},
	{"ultrascale", "fig6", "lut", 8, 1, 0, 0},
	{"ultrascale", "macc", "default", 0, 0, 0, 1},
	{"ultrascale", "macc", "lut", 128, 8, 8, 0},
	{"ultrascale", "vadd8", "default", 0, 0, 0, 8},
	{"ultrascale", "vadd8", "lut", 64, 8, 0, 0},
	{"agilex", "counter", "default", 0, 0, 0, 1},
	{"agilex", "counter", "lut", 8, 1, 8, 0},
	{"agilex", "fig6", "default", 0, 0, 0, 1},
	{"agilex", "fig6", "lut", 8, 1, 0, 0},
	{"agilex", "macc", "default", 0, 0, 0, 1},
	{"agilex", "macc", "lut", 128, 8, 8, 0},
	{"agilex", "vadd8", "default", 0, 0, 0, 8},
	{"agilex", "vadd8", "lut", 64, 8, 0, 0},
}

// compileGolden compiles one golden row's program under its family and
// policy and returns the artifact.
func compileGolden(t *testing.T, progs map[string]string, family, program, policy string) *Artifact {
	t.Helper()
	var opts Options
	if family == "agilex" {
		opts = Options{Target: Agilex(), Device: AGF014()}
	}
	c, err := NewCompilerWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := progs[program]
	if !ok {
		t.Fatalf("no example program %q", program)
	}
	f, err := ParseIR(src)
	if err != nil {
		t.Fatal(err)
	}
	if policy == "lut" {
		if f, err = Bind(f, PreferLut); err != nil {
			t.Fatal(err)
		}
	}
	art, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestAreaGoldenExamples(t *testing.T) {
	progs := examplePrograms(t)
	covered := make(map[string]bool)
	for _, g := range areaGoldens {
		covered[g.program] = true
		t.Run(fmt.Sprintf("%s/%s/%s", g.family, g.program, g.policy), func(t *testing.T) {
			art := compileGolden(t, progs, g.family, g.program, g.policy)
			if art.LUTs != g.luts || art.Carries != g.carries || art.FFs != g.ffs || art.DSPs != g.dsps {
				t.Fatalf("area (luts=%d carries=%d ffs=%d dsps=%d), golden (%d %d %d %d)",
					art.LUTs, art.Carries, art.FFs, art.DSPs,
					g.luts, g.carries, g.ffs, g.dsps)
			}
		})
	}
	// Every bundled example must have a golden row: a new example added
	// without one silently escapes the area contract.
	for name := range progs {
		if !covered[name] {
			t.Errorf("example %q has no area golden; add rows for it", name)
		}
	}
}

// TestAreaEstimatorMatchesArtifactExamples: the estimator over the
// placed assembly reproduces codegen's counts on every golden compile.
// This equality is what lets /explore score disk-cached artifacts from
// their recorded counters interchangeably with a fresh estimate.
func TestAreaEstimatorMatchesArtifactExamples(t *testing.T) {
	progs := examplePrograms(t)
	for _, g := range areaGoldens {
		t.Run(fmt.Sprintf("%s/%s/%s", g.family, g.program, g.policy), func(t *testing.T) {
			art := compileGolden(t, progs, g.family, g.program, g.policy)
			target := UltraScale()
			if g.family == "agilex" {
				target = Agilex()
			}
			a, err := timing.EstimateArea(art.Placed, target)
			if err != nil {
				t.Fatal(err)
			}
			if a.Luts != art.LUTs || a.Carries != art.Carries || a.FFs != art.FFs || a.Dsps != art.DSPs {
				t.Fatalf("estimator (luts=%d carries=%d ffs=%d dsps=%d), artifact (%d %d %d %d)",
					a.Luts, a.Carries, a.FFs, a.Dsps,
					art.LUTs, art.Carries, art.FFs, art.DSPs)
			}
		})
	}
}

// TestAreaEstimatorMatchesArtifactRandom extends the estimator/codegen
// equality to generated programs on both families.
func TestAreaEstimatorMatchesArtifactRandom(t *testing.T) {
	const programs = 24
	for _, fam := range cosimFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			c, err := NewCompilerWith(fam.opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < programs; i++ {
				f := irgen.Generate(rng, irgen.Config{Instrs: 12, WithVectors: true})
				art, err := c.Compile(f)
				if err != nil {
					// The generator can emit programs a family cannot
					// place; those are not area-contract subjects.
					continue
				}
				a, err := timing.EstimateArea(art.Placed, c.Target())
				if err != nil {
					t.Fatalf("program %d: estimate: %v\n%s", i, err, art.Placed)
				}
				if a.Luts != art.LUTs || a.Carries != art.Carries || a.FFs != art.FFs || a.Dsps != art.DSPs {
					t.Fatalf("program %d: estimator (luts=%d carries=%d ffs=%d dsps=%d), artifact (%d %d %d %d)\n%s",
						i, a.Luts, a.Carries, a.FFs, a.Dsps,
						art.LUTs, art.Carries, art.FFs, art.DSPs, f)
				}
			}
		})
	}
}
