// FSM: a control-oriented coroutine as a finite state machine (§7.1).
// Control logic can only use LUTs — conditional branching requires
// multiplexing — so this is the workload where a traditional toolchain's
// logic optimizer beats Reticle's per-operation mapping. The example shows
// both sides: Reticle's deterministic LUT mapping and the behavioral
// baseline's packed result.
//
//	go run ./examples/fsm
package main

import (
	"fmt"
	"log"

	"reticle"
	"reticle/internal/bench"
	"reticle/internal/interp"
	"reticle/internal/ir"
)

func main() {
	const states = 5
	f, err := bench.FSM(states)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the machine: advance, advance, hold, advance...
	gos := []bool{true, true, false, true, true, true, true}
	trace := make(interp.Trace, len(gos))
	for i, g := range gos {
		trace[i] = interp.Step{"go": ir.BoolValue(g)}
	}
	out, err := reticle.Interpret(f, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coroutine over %d states (wraps at the end):\n", states)
	for i := range out {
		fmt.Printf("  cycle %d: go=%v state=%s\n", i, gos[i], out[i]["y"])
	}

	// Reticle side: deterministic, LUT-only mapping.
	c, err := reticle.NewCompiler()
	if err != nil {
		log.Fatal(err)
	}
	art, err := c.Compile(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreticle:  %3d LUTs, %d DSPs, %.3f ns (%.0f MHz), compiled in %s\n",
		art.LUTs, art.DSPs, art.CriticalNs, art.FMaxMHz, art.CompileDur)

	// Baseline side: behavioral translation through the traditional
	// toolchain, whose logic optimizer packs the mux/eq cones.
	base, err := reticle.BaselineCompile(f, nil, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %3d LUTs, %d DSPs, %.3f ns (%.0f MHz), compiled in %s\n",
		base.LutsUsed, base.DspsUsed, base.CriticalNs, base.FMaxMHz,
		base.SynthDur+base.PlaceDur)

	fmt.Println("\nthe baseline wins run-time here (§7.2): control logic is its home turf,")
	fmt.Println("while Reticle still compiles much faster and maps deterministically.")

	// Show what the baseline actually consumed as input.
	v, err := reticle.BehavioralVerilog(f, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== behavioral Verilog fed to the baseline (excerpt) ==")
	lines := 0
	for _, ln := range splitLines(v) {
		fmt.Println(ln)
		if lines++; lines > 14 {
			fmt.Println("    ...")
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
