// Portability: the same intermediate program retargeted to two FPGA
// families (§4.2 — "assembly instructions are portable within an FPGA
// family; devices within a family share the same primitives"). The
// UltraScale-like and Agilex-like targets differ in DSP capabilities,
// costs, and fabric geometry; the IR doesn't care.
//
//	go run ./examples/portability
package main

import (
	"fmt"
	"log"
	"strings"

	"reticle"
	"reticle/internal/target/agilex"
)

const kernel = `
def kernel(a:i8, b:i8, c:i8, k:i24, m:i24, en:bool) -> (y:i8, z:i24) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
    z:i24 = mul(k, m) @??;
}
`

func main() {
	f, err := reticle.ParseIR(kernel)
	if err != nil {
		log.Fatal(err)
	}

	families := []struct {
		name string
		opts reticle.Options
	}{
		{"ultrascale / xczu3eg", reticle.Options{}},
		{"agilex / agf014", reticle.Options{Target: agilex.Target(), Device: agilex.Device()}},
	}

	fmt.Println("one IR program, two FPGA families:")
	fmt.Print(kernel)

	for _, fam := range families {
		c, err := reticle.NewCompilerWith(fam.opts)
		if err != nil {
			log.Fatal(err)
		}
		art, err := c.Compile(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", fam.name)
		for _, line := range strings.Split(art.Asm.String(), "\n") {
			if strings.Contains(line, "@dsp") || strings.Contains(line, "@lut") {
				fmt.Println(line)
			}
		}
		fmt.Printf("  -> %d DSPs, %d LUTs, %.3f ns (%.0f MHz)\n\n",
			art.DSPs, art.LUTs, art.CriticalNs, art.FMaxMHz)
	}

	fmt.Println("note the 24-bit multiply: one DSP on UltraScale (27-bit multiplier),")
	fmt.Println("but ALM fabric on Agilex (18-bit multiplier limit) — the selection is")
	fmt.Println("deterministic and visible, never a silent toolchain surprise.")
}
