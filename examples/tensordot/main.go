// Tensordot: build a systolic dot-product array with the IR builder, watch
// instruction selection fuse each stage into a registered multiply-add,
// the layout optimizer chain them down a DSP column (§5.2), and the
// interpreter confirm the arithmetic.
//
//	go run ./examples/tensordot
package main

import (
	"fmt"
	"log"
	"strings"

	"reticle"
	"reticle/internal/bench"
	"reticle/internal/interp"
	"reticle/internal/ir"
)

const size = 8 // dot product length

func main() {
	// One systolic array of `size` stages: acc' = reg(a*b + acc).
	f, err := bench.TensorDot(1, size)
	if err != nil {
		log.Fatal(err)
	}

	c, err := reticle.NewCompiler()
	if err != nil {
		log.Fatal(err)
	}
	art, err := c.Compile(f)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("systolic stages:   %d\n", size)
	fmt.Printf("DSPs used:         %d (one registered muladd per stage)\n", art.DSPs)
	fmt.Printf("cascade chains:    %d\n", art.CascadeChains)
	fmt.Printf("critical path:     %.3f ns (%.0f MHz)\n", art.CriticalNs, art.FMaxMHz)

	fmt.Println("\n== placed assembly (note the column-adjacent DSP rows) ==")
	for _, line := range strings.Split(art.Placed.String(), "\n") {
		if strings.Contains(line, "@dsp") {
			fmt.Println(line)
		}
	}

	// Verify the arithmetic: constant inputs, run long enough for the
	// pipeline to fill, and compare with the plain dot product.
	i8 := ir.Int(8)
	step := interp.Step{"en": ir.BoolValue(true)}
	want := int64(0)
	for j := 0; j < size; j++ {
		a, b := int64(j+1), int64(2*j-3)
		step[fmt.Sprintf("a0_%d", j)] = ir.ScalarValue(i8, a)
		step[fmt.Sprintf("b0_%d", j)] = ir.ScalarValue(i8, b)
		want += a * b
	}
	want = int64(int8(want)) // i8 wraparound

	trace := make(interp.Trace, size+1)
	for i := range trace {
		trace[i] = step
	}
	out, err := reticle.Interpret(f, trace)
	if err != nil {
		log.Fatal(err)
	}
	got := out[size]["y0"].Scalar()
	fmt.Printf("\ndot product after %d cycles: %d (expected %d)\n", size, got, want)
	if got != want {
		log.Fatal("mismatch!")
	}

	// Compare against the cascade-less compilation. On an empty device the
	// solver may happen to pack the stages adjacently anyway; the cascade
	// constraints are what *guarantee* the adjacency (and the dedicated
	// routes) no matter how crowded the device gets (§5.2).
	plain, err := reticle.NewCompilerWith(reticle.Options{NoCascade: true})
	if err != nil {
		log.Fatal(err)
	}
	art2, err := plain.Compile(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith cascading:    %.3f ns (adjacency guaranteed by constraints)\n", art.CriticalNs)
	fmt.Printf("without cascading: %.3f ns (adjacency left to placement luck)\n", art2.CriticalNs)
}
