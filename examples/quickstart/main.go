// Quickstart: compile a small Reticle program end to end and print every
// intermediate stage — the Fig. 7 pipeline in one page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"reticle"
)

// A multiply-accumulate with a pipeline register: Fig. 8's running example
// plus state.
const program = `
def macc(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {
    t0:i8 = mul(a, b) @??;
    t1:i8 = add(t0, c) @??;
    y:i8 = reg[0](t1, en) @??;
}
`

func main() {
	c, err := reticle.NewCompiler()
	if err != nil {
		log.Fatal(err)
	}

	art, err := c.CompileString(program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== intermediate language ==")
	fmt.Print(art.IR.String())

	fmt.Println("\n== selected assembly (family-specific, unplaced) ==")
	fmt.Print(art.Asm.String())

	fmt.Println("\n== placed assembly (device-specific) ==")
	fmt.Print(art.Placed.String())

	fmt.Println("\n== structural Verilog with layout annotations ==")
	fmt.Print(art.Verilog)

	fmt.Println("\n== report ==")
	fmt.Printf("DSPs used:      %d\n", art.DSPs)
	fmt.Printf("LUTs used:      %d\n", art.LUTs)
	fmt.Printf("critical path:  %.3f ns (%.0f MHz)\n", art.CriticalNs, art.FMaxMHz)
	fmt.Printf("compile time:   %s\n", art.CompileDur)

	// The interpreter gives the reference semantics without hardware:
	// feed a three-cycle trace and watch the register lag one cycle.
	f := art.IR
	i8 := func(v int64) reticle.Value { return scalar(v) }
	trace := reticle.Trace{
		{"a": i8(3), "b": i8(4), "c": i8(5), "en": boolv(true)},
		{"a": i8(2), "b": i8(2), "c": i8(0), "en": boolv(true)},
		{"a": i8(0), "b": i8(0), "c": i8(0), "en": boolv(false)},
	}
	out, err := reticle.Interpret(f, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== interpreter trace (y = a*b + c, one cycle late) ==")
	for i, step := range out {
		fmt.Printf("cycle %d: y = %s\n", i, step["y"])
	}
}

func scalar(v int64) reticle.Value {
	t, err := reticle.ParseIRType("i8")
	if err != nil {
		panic(err)
	}
	return reticle.ScalarValue(t, v)
}

func boolv(b bool) reticle.Value { return reticle.BoolValue(b) }
