// Frontend: the §8 compilation steps as a library. A scalar program is
// vectorized (§8.2, Fig. 16), pipelined (§8.1, Fig. 14), and resource-bound
// (§8.2, Fig. 17) before entering the Reticle compiler — exactly the
// division of labor the paper assigns to front-end tools.
//
//	go run ./examples/frontend
package main

import (
	"fmt"
	"log"

	"reticle"
)

// Eight independent scalar additions — the unoptimized Fig. 16a shape.
const scalarProgram = `
def vadd8(a0:i8, b0:i8, a1:i8, b1:i8, a2:i8, b2:i8, a3:i8, b3:i8,
          a4:i8, b4:i8, a5:i8, b5:i8, a6:i8, b6:i8, a7:i8, b7:i8) ->
        (t0:i8, t1:i8, t2:i8, t3:i8, t4:i8, t5:i8, t6:i8, t7:i8) {
    t0:i8 = add(a0, b0) @??;
    t1:i8 = add(a1, b1) @??;
    t2:i8 = add(a2, b2) @??;
    t3:i8 = add(a3, b3) @??;
    t4:i8 = add(a4, b4) @??;
    t5:i8 = add(a5, b5) @??;
    t6:i8 = add(a6, b6) @??;
    t7:i8 = add(a7, b7) @??;
}
`

func main() {
	f, err := reticle.ParseIR(scalarProgram)
	if err != nil {
		log.Fatal(err)
	}
	c, err := reticle.NewCompiler()
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, g *reticle.Func) {
		art, err := c.Compile(g)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s %3d DSPs  %3d LUTs  %.3f ns (%.0f MHz)\n",
			label, art.DSPs, art.LUTs, art.CriticalNs, art.FMaxMHz)
	}

	fmt.Println("eight i8 additions through the front-end passes:")
	fmt.Println()

	// Unoptimized: eight scalar operations, eight DSPs.
	report("scalar (Fig. 16a)", f)

	// Vectorize: two i8<4> operations, two DSPs (§8.2).
	vec, groups, err := reticle.Vectorize(f, 4)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("vectorized x%d (Fig. 16b)", groups), vec)

	// Pipeline: registered results, higher clock rate (§8.1).
	piped, regs, err := reticle.Pipeline(vec, "")
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("vectorized + %d regs", regs), piped)

	// Resource binding: force everything onto LUT fabric — the §8.2
	// example of optimizing for a metric (say, saving DSPs for another
	// kernel) the compiler would not choose by itself.
	lut, err := reticle.Bind(f, reticle.PreferLut)
	if err != nil {
		log.Fatal(err)
	}
	report("bound @lut (Fig. 17a)", lut)
}
