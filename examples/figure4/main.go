// Figure 4: reproduce the paper's motivating experiment. The behavioral
// Fig. 3 program (N parallel i8 additions with a use_dsp hint) exhausts the
// device's 360 DSPs by N = 512 and silently spills onto LUTs, while the
// hand-optimized structural version — which Reticle expresses directly with
// vector types — needs only N/4 DSPs and no LUTs.
//
//	go run ./examples/figure4
package main

import (
	"fmt"
	"log"

	"reticle/internal/eval"
)

func main() {
	rows, err := eval.Figure4(eval.Figure4Sizes, eval.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 4: DSP and LUT utilization, behavioral+hint vs structural vectorized")
	fmt.Println("(device: xczu3eg-like, 360 DSPs)")
	fmt.Println()
	fmt.Print(eval.FormatFig4(rows))
	fmt.Println()
	fmt.Println("behavioral saturates the DSPs at N=512 and resorts to LUTs;")
	fmt.Println("the vectorized structural program would fit N=1440 (360 x 4 lanes).")
}
