// Batch determinism and facade-level batch behavior. The headline claim:
// CompileBatch with any worker count produces byte-identical output to
// serial Compile — including the placement-bearing `LOC` attributes in
// the emitted Verilog — for every bundled example program on every
// bundled family. Placement is a constraint search, so this only holds
// because every pipeline stage is deterministic and shares no mutable
// state across kernels; this suite is what keeps that true.
package reticle

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"
)

// batchKernels parses every examples/programs/*.ret once, in sorted name
// order so batch indices are stable.
func batchKernels(t *testing.T) (names []string, srcs []string) {
	t.Helper()
	progs := examplePrograms(t)
	for name := range progs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		srcs = append(srcs, progs[name])
	}
	return names, srcs
}

func parseAll(t *testing.T, srcs []string) []*Func {
	t.Helper()
	fs := make([]*Func, len(srcs))
	for i, src := range srcs {
		f, err := ParseIR(src)
		if err != nil {
			t.Fatal(err)
		}
		fs[i] = f
	}
	return fs
}

// TestBatchDeterminism compiles each bundled example serially and then
// through CompileBatch with 8 workers, twice, on both families, and
// requires byte-identical Verilog (and placed assembly) everywhere.
func TestBatchDeterminism(t *testing.T) {
	names, srcs := batchKernels(t)
	for _, fam := range cosimFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			c, err := NewCompilerWith(fam.opts)
			if err != nil {
				t.Fatal(err)
			}
			// Serial reference. Parse fresh per run so no run can lean on
			// another's in-memory IR.
			serialVerilog := make([]string, len(srcs))
			serialPlaced := make([]string, len(srcs))
			for i, f := range parseAll(t, srcs) {
				art, err := c.Compile(f)
				if err != nil {
					t.Fatalf("%s: serial compile: %v", names[i], err)
				}
				serialVerilog[i] = art.Verilog
				serialPlaced[i] = art.Placed.String()
			}
			for run := 0; run < 2; run++ {
				results, st, err := c.CompileBatch(context.Background(),
					parseAll(t, srcs), BatchOptions{Jobs: 8})
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if st.Succeeded != len(srcs) {
					t.Fatalf("run %d: stats %+v, want %d successes", run, st, len(srcs))
				}
				for i, r := range results {
					if !r.Ok() {
						t.Fatalf("run %d: %s: %v", run, names[i], r.Err)
					}
					if r.Artifact.Verilog != serialVerilog[i] {
						t.Errorf("run %d: %s: batch Verilog differs from serial (LOC/placement drift?)",
							run, names[i])
					}
					if r.Artifact.Placed.String() != serialPlaced[i] {
						t.Errorf("run %d: %s: batch placed assembly differs from serial",
							run, names[i])
					}
				}
			}
		})
	}
}

// TestCompileBatchFacade exercises the package-level entry point and the
// per-kernel error contract at the public API: a kernel that cannot be
// selected fails alone, artifacts carry per-stage times, and aggregate
// stats are populated.
func TestCompileBatchFacade(t *testing.T) {
	good, err := ParseIR(`
def ok(a:i8, b:i8) -> (y:i8) {
    y:i8 = add(a, b) @??;
}`)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := ParseIR(`
def bad(a:i3, b:i3) -> (y:i3) {
    y:i3 = add(a, b) @??;
}`)
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := CompileBatch(context.Background(), []*Func{good, bad}, BatchOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Ok() {
		t.Fatalf("good kernel failed: %v", results[0].Err)
	}
	if results[0].Artifact.Stages.Select <= 0 {
		t.Error("artifact carries no per-stage times")
	}
	if results[1].Ok() {
		t.Error("unselectable kernel compiled")
	}
	if st.Kernels != 2 || st.Succeeded != 1 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.KernelsPerSec <= 0 || st.Wall <= 0 {
		t.Errorf("aggregate throughput missing: %+v", st)
	}
}

// TestCompileContextCancelled: the context-aware single-kernel entry
// point surfaces cancellation as an error wrapping context.Canceled.
func TestCompileContextCancelled(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseIR(`
def k(a:i8, b:i8) -> (y:i8) {
    y:i8 = add(a, b) @??;
}`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CompileContext(ctx, f); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	// And a live context compiles normally.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := c.CompileContext(ctx2, f); err != nil {
		t.Errorf("live context: %v", err)
	}
}
