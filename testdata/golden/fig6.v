module fig6(input x, output [7:0] t2);
    wire [7:0] t0;
    wire [7:0] t1;
    assign t0 = 8'h5;
    assign t1 = {t0[6:0], 1'h0};
    (* LOC = "DSP48E2_X0Y0" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t2 (.A(t0), .B(t1), .P(t2));
endmodule
