module counter(input clk, input x, output [7:0] t3);
    wire [7:0] t1;
    wire t0;
    assign t1 = 8'h4;
    assign t0 = 1'h1;
    (* LOC = "DSP48E2_X0Y0" *)
    DSP48E2 # (.FUNC("dsp_addrega_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(1), .INIT(0))
        dsp_t3 (.CLK(clk), .A(t3), .B(t1), .CE(t0), .P(t3));
endmodule
