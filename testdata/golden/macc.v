module macc(input clk, input [7:0] a, input [7:0] b, input [7:0] c, input en, output [7:0] y);
    (* LOC = "DSP48E2_X0Y0" *)
    DSP48E2 # (.FUNC("dsp_muladdrega_i8"), .OPMODE(9'h35), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(1), .INIT(0))
        dsp_y (.CLK(clk), .A(a), .B(b), .C(c), .CE(en), .P(y));
endmodule
