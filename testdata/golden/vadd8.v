module vadd8(input [7:0] a0, input [7:0] b0, input [7:0] a1, input [7:0] b1, input [7:0] a2, input [7:0] b2, input [7:0] a3, input [7:0] b3, input [7:0] a4, input [7:0] b4, input [7:0] a5, input [7:0] b5, input [7:0] a6, input [7:0] b6, input [7:0] a7, input [7:0] b7, output [7:0] t0, output [7:0] t1, output [7:0] t2, output [7:0] t3, output [7:0] t4, output [7:0] t5, output [7:0] t6, output [7:0] t7);
    (* LOC = "DSP48E2_X0Y0" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t0 (.A(a0), .B(b0), .P(t0));
    (* LOC = "DSP48E2_X0Y1" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t1 (.A(a1), .B(b1), .P(t1));
    (* LOC = "DSP48E2_X0Y2" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t2 (.A(a2), .B(b2), .P(t2));
    (* LOC = "DSP48E2_X0Y3" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t3 (.A(a3), .B(b3), .P(t3));
    (* LOC = "DSP48E2_X0Y4" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t4 (.A(a4), .B(b4), .P(t4));
    (* LOC = "DSP48E2_X0Y5" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t5 (.A(a5), .B(b5), .P(t5));
    (* LOC = "DSP48E2_X0Y6" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t6 (.A(a6), .B(b6), .P(t6));
    (* LOC = "DSP48E2_X0Y7" *)
    DSP48E2 # (.FUNC("dsp_add_i8"), .OPMODE(9'h3f), .ALUMODE(4'h0), .USE_SIMD("ONE48"), .PREG(0))
        dsp_t7 (.A(a7), .B(b7), .P(t7));
endmodule
