// Benchmarks regenerating the paper's evaluation (§7). One benchmark per
// figure/panel:
//
//	BenchmarkFigure4            — Fig. 4a/4b utilization sweep
//	BenchmarkTensorAdd*         — Fig. 13a (compile both toolchains per size)
//	BenchmarkTensorDot*         — Fig. 13b
//	BenchmarkFSM*               — Fig. 13c
//	BenchmarkReticleCompile*    — the Reticle pipeline alone
//	BenchmarkBaselineCompile*   — the baseline toolchain alone
//	BenchmarkAblation*          — design-choice ablations (DESIGN.md §5)
//
// Each Figure-13 benchmark reports the paper's headline metrics as custom
// units: compile-speedup(x), run-speedup(x) vs the base configuration.
// Absolute numbers depend on the host; the *shape* (who wins, by roughly
// what factor, where the crossovers fall) is the reproduction target —
// see EXPERIMENTS.md.
package reticle

import (
	"context"
	"fmt"
	"os"
	"testing"

	"reticle/internal/bench"
	"reticle/internal/eval"
	"reticle/internal/hintcache"
	"reticle/internal/ir"
	"reticle/internal/isel"
	"reticle/internal/place"
	"reticle/internal/stagecache"
	"reticle/internal/target/ultrascale"
	"reticle/internal/vivado"
)

// benchAnneal is a mid-length schedule: long enough to keep the baseline's
// character, short enough for repeated benchmark iterations.
func benchAnneal() vivado.AnnealOptions {
	return vivado.AnnealOptions{Seed: 1, MovesPerCell: 500, MinMoves: 50_000}
}

func benchCfg() eval.Config {
	return eval.Config{Anneal: benchAnneal()}
}

// BenchmarkFigure4 regenerates the Fig. 4 utilization sweep (both panels).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure4(eval.Figure4Sizes, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if rows[len(rows)-1].BehavDsps != 360 {
			b.Fatal("saturation lost")
		}
	}
}

// figure13Panel benchmarks one size of one Fig. 13 panel: it compiles the
// program under all three configurations and reports speedups.
func figure13Panel(b *testing.B, benchName string, size int) {
	b.Helper()
	f, err := eval.Program(benchName, size)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	var ret, base, hint eval.Row
	for i := 0; i < b.N; i++ {
		if ret, err = eval.ReticleCompile(f, cfg); err != nil {
			b.Fatal(err)
		}
		if base, err = eval.BaselineCompile(f, false, cfg); err != nil {
			b.Fatal(err)
		}
		if hint, err = eval.BaselineCompile(f, true, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(base.Compile)/float64(ret.Compile), "compile-speedup-base(x)")
	b.ReportMetric(float64(hint.Compile)/float64(ret.Compile), "compile-speedup-hint(x)")
	b.ReportMetric(base.RunNs/ret.RunNs, "run-speedup-base(x)")
	b.ReportMetric(hint.RunNs/ret.RunNs, "run-speedup-hint(x)")
	b.ReportMetric(float64(ret.Luts), "reticle-LUTs")
	b.ReportMetric(float64(ret.Dsps), "reticle-DSPs")
}

func BenchmarkTensorAdd(b *testing.B) {
	for _, size := range eval.TensorAddSizes {
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			figure13Panel(b, "tensoradd", size)
		})
	}
}

func BenchmarkTensorDot(b *testing.B) {
	for _, size := range eval.TensorDotSizes {
		b.Run(fmt.Sprintf("5x%d", size), func(b *testing.B) {
			figure13Panel(b, "tensordot", size)
		})
	}
}

func BenchmarkFSM(b *testing.B) {
	for _, size := range eval.FSMSizes {
		b.Run(fmt.Sprintf("s%d", size), func(b *testing.B) {
			figure13Panel(b, "fsm", size)
		})
	}
}

// BenchmarkReticleCompile measures the Reticle pipeline alone across the
// largest size of each workload.
func BenchmarkReticleCompile(b *testing.B) {
	cases := []struct {
		name string
		f    func() (*ir.Func, error)
	}{
		{"tensoradd512", func() (*ir.Func, error) { return bench.TensorAdd(512) }},
		{"tensordot5x36", func() (*ir.Func, error) { return bench.TensorDot(5, 36) }},
		{"fsm9", func() (*ir.Func, error) { return bench.FSM(9) }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			f, err := tc.f()
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchCfg()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.ReticleCompile(f, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselineCompile measures the simulated traditional toolchain.
func BenchmarkBaselineCompile(b *testing.B) {
	for _, hint := range []bool{false, true} {
		name := "base"
		if hint {
			name = "hint"
		}
		b.Run(name, func(b *testing.B) {
			f, err := bench.TensorAdd(256)
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchCfg()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.BaselineCompile(f, hint, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSelector compares optimal tree covering against greedy
// maximal munch (DESIGN.md ablation 1).
func BenchmarkAblationSelector(b *testing.B) {
	f, err := bench.TensorDot(5, 18)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := isel.NewLibrary(ultrascale.Target())
	if err != nil {
		b.Fatal(err)
	}
	for _, greedy := range []bool{false, true} {
		name := "optimal"
		if greedy {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			var dsps int
			for i := 0; i < b.N; i++ {
				af, err := isel.SelectWithLibrary(f, lib, isel.Options{Greedy: greedy})
				if err != nil {
					b.Fatal(err)
				}
				dsps = af.AsmCount()
			}
			b.ReportMetric(float64(dsps), "instructions")
		})
	}
}

// BenchmarkAblationShrink compares placement with and without the
// binary-search compaction passes (DESIGN.md ablation 2).
func BenchmarkAblationShrink(b *testing.B) {
	f, err := bench.TensorDot(5, 9)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := isel.NewLibrary(ultrascale.Target())
	if err != nil {
		b.Fatal(err)
	}
	af, err := isel.SelectWithLibrary(f, lib, isel.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dev := ultrascale.Device()
	for _, shrink := range []bool{false, true} {
		name := "plain"
		if shrink {
			name = "shrink"
		}
		b.Run(name, func(b *testing.B) {
			var area int
			for i := 0; i < b.N; i++ {
				res, err := place.Place(af, dev, place.Options{Shrink: shrink})
				if err != nil {
					b.Fatal(err)
				}
				area = (res.MaxX[ir.ResDsp] + 1) * (res.MaxY[ir.ResDsp] + 1)
			}
			b.ReportMetric(float64(area), "dsp-bbox-area")
		})
	}
}

// BenchmarkPlaceShrink measures the placement hot path the warm-started
// shrink loop optimizes: tensordot 5x36 through the full pipeline with
// Shrink enabled — after cascading, five 36-member DSP macro chains whose
// compaction used to burn the probe step budget proving tight bounds
// infeasible. The custom metrics land in BENCH_<sha>.json (via
// cmd/reticle-benchjson) and are the placement-stage series
// scripts/bench_compare.sh guards against regression.
func BenchmarkPlaceShrink(b *testing.B) {
	f, err := bench.TensorDot(5, 36)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCompilerWith(Options{Shrink: true})
	if err != nil {
		b.Fatal(err)
	}
	var art *Artifact
	for i := 0; i < b.N; i++ {
		art, err = c.Compile(f)
		if err != nil {
			b.Fatal(err)
		}
	}
	ps := art.Place
	b.ReportMetric(float64(ps.SolverSteps), "solver-steps")
	b.ReportMetric(float64(ps.ShrinkProbes), "shrink-probes")
	b.ReportMetric(float64(ps.ProbesSkipped), "probes-skipped")
	if ps.ShrinkProbes > 0 {
		b.ReportMetric(float64(ps.SolverSteps)/float64(ps.ShrinkProbes), "steps-per-probe")
	}
	if ps.HintTried > 0 {
		b.ReportMetric(float64(ps.HintHits)/float64(ps.HintTried), "hint-hit-rate")
	}
	b.ReportMetric(float64(art.Stages.Place.Nanoseconds()), "place-ns")
}

// tweakEditConstants bumps every const and reg-init value by delta —
// the canonical incremental edit: a new artifact with an identical
// structural hash, so the placement hint cache should adopt the
// recorded solution.
func tweakEditConstants(f *ir.Func, delta int64) {
	for i := range f.Body {
		if f.Body[i].Op == ir.OpConst || f.Body[i].Op == ir.OpReg {
			attrs := append([]int64(nil), f.Body[i].Attrs...)
			for k := range attrs {
				attrs[k] += delta
			}
			f.Body[i].Attrs = attrs
		}
	}
}

// BenchmarkEditReplay measures the incremental edit loop the placement
// hint cache accelerates: a warm full compile of tensordot 5x36, then
// one constant-tweaked recompile per iteration against the same hint
// store. hint-cache-hit-rate should sit at 1.0 and steps-per-edit at
// ~0; steps-per-edit is gated by scripts/bench_compare.sh so the
// adoption path cannot silently start re-solving.
func BenchmarkEditReplay(b *testing.B) {
	base, err := bench.TensorDot(5, 36)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCompilerWith(Options{Shrink: true})
	if err != nil {
		b.Fatal(err)
	}
	c.cfg.HintCache = hintcache.New(64)
	cold, err := c.Compile(base)
	if err != nil {
		b.Fatal(err)
	}
	coldSteps := cold.Place.SolverSteps

	var hits, steps, saved int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := base.Clone()
		tweakEditConstants(f, int64(i%100+1))
		art, err := c.Compile(f)
		if err != nil {
			b.Fatal(err)
		}
		hits += art.Place.HintCacheHits
		steps += art.Place.SolverSteps
		saved += art.Place.HintCacheStepsSaved
	}
	edits := float64(b.N)
	b.ReportMetric(float64(hits)/edits, "hint-cache-hit-rate")
	b.ReportMetric(float64(steps)/edits, "steps-per-edit")
	b.ReportMetric(float64(saved)/edits, "steps-saved-per-edit")
	b.ReportMetric(float64(coldSteps), "cold-steps")
}

// BenchmarkAblationCascade compares tensordot timing with and without the
// §5.2 layout optimization (DESIGN.md ablation 3).
func BenchmarkAblationCascade(b *testing.B) {
	f, err := bench.TensorDot(5, 18)
	if err != nil {
		b.Fatal(err)
	}
	for _, noCascade := range []bool{false, true} {
		name := "cascade"
		if noCascade {
			name = "fabric"
		}
		b.Run(name, func(b *testing.B) {
			c, err := NewCompilerWith(Options{NoCascade: noCascade})
			if err != nil {
				b.Fatal(err)
			}
			var crit float64
			for i := 0; i < b.N; i++ {
				art, err := c.Compile(f)
				if err != nil {
					b.Fatal(err)
				}
				crit = art.CriticalNs
			}
			b.ReportMetric(crit, "critical-ns")
		})
	}
}

// BenchmarkInterpreter measures Algorithm 1 throughput on the fsm.
func BenchmarkInterpreter(b *testing.B) {
	f, err := bench.FSM(9)
	if err != nil {
		b.Fatal(err)
	}
	trace := make(Trace, 100)
	for i := range trace {
		trace[i] = Step{"go": ir.BoolValue(i%3 != 0)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Interpret(f, trace); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTimingDriven compares plain solver placement against
// timing-driven refinement (the paper's named future-work direction).
func BenchmarkAblationTimingDriven(b *testing.B) {
	f, err := bench.TensorDot(2, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, td := range []bool{false, true} {
		name := "plain"
		if td {
			name = "refined"
		}
		b.Run(name, func(b *testing.B) {
			c, err := NewCompilerWith(Options{TimingDriven: td})
			if err != nil {
				b.Fatal(err)
			}
			var crit float64
			for i := 0; i < b.N; i++ {
				art, err := c.Compile(f)
				if err != nil {
					b.Fatal(err)
				}
				crit = art.CriticalNs
			}
			b.ReportMetric(crit, "critical-ns")
		})
	}
}

// BenchmarkCompileBatch measures the concurrent batch compiler: one
// shared pattern library, a mixed kernel set (systolic dot products,
// vector adds, FSMs), and increasing worker counts. The reported
// kernels/sec is the metric the bench-baseline CI job tracks; jobs1 vs
// jobsN shows the parallel speedup the read-only shared library buys.
func BenchmarkCompileBatch(b *testing.B) {
	var fs []*Func
	for i := 0; i < 4; i++ {
		dot, err := bench.TensorDot(2, 3+i)
		if err != nil {
			b.Fatal(err)
		}
		add, err := bench.TensorAdd(64)
		if err != nil {
			b.Fatal(err)
		}
		fsm, err := bench.FSM(3 + i)
		if err != nil {
			b.Fatal(err)
		}
		fs = append(fs, dot, add, fsm)
	}
	for _, jobs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			c, err := NewCompiler()
			if err != nil {
				b.Fatal(err)
			}
			var rate float64
			for i := 0; i < b.N; i++ {
				results, st, err := c.CompileBatch(context.Background(), fs, BatchOptions{Jobs: jobs})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if !r.Ok() {
						b.Fatalf("kernel %d: %v", r.Index, r.Err)
					}
				}
				rate = st.KernelsPerSec
			}
			b.ReportMetric(rate, "kernels/sec")
		})
	}
}

// BenchmarkExplore measures the design-space sweep engine (/explore)
// over the tensordot kernel with the per-stage compilation memo wired
// in — the steady state of a service re-sweeping an edited kernel. A
// warm-up sweep fills the stage cache; every timed sweep then compiles
// each variant through the full pipeline with the stages served from
// the memo. No whole-artifact tier sits in front (that would measure a
// map lookup, not the pipeline), so explore-ns-per-variant — the
// bench_compare gate — tracks what a compile actually costs when stage
// results are reusable. stage-skips-per-variant must stay > 0: zero
// means stage keys stopped being stable across identical sweeps.
//
// Set RETICLE_BENCH_NO_STAGECACHE=1 to disable the memo and measure
// cold per-variant compiles — the pre-stage-cache behavior the
// committed baseline was generated with.
func BenchmarkExplore(b *testing.B) {
	f, err := bench.TensorDot(5, 9)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCompiler()
	if err != nil {
		b.Fatal(err)
	}
	memoized := os.Getenv("RETICLE_BENCH_NO_STAGECACHE") == ""
	if memoized {
		c.cfg.StageCache = stagecache.New(4096)
	}
	opts := ExploreOptions{Jobs: 4}
	ctx := context.Background()
	if _, err := c.Explore(ctx, f, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *ExploreResult
	for i := 0; i < b.N; i++ {
		res, err = c.Explore(ctx, f, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Partial || len(res.Frontier) == 0 {
		b.Fatalf("degenerate sweep: partial=%v frontier=%d", res.Partial, len(res.Frontier))
	}
	if memoized && res.Stats.StagesSkipped == 0 {
		b.Fatal("warm sweep skipped no stages: stage keys are unstable across identical sweeps")
	}
	b.ReportMetric(res.Stats.VariantsPerSec, "variants-per-sec")
	b.ReportMetric(float64(res.Stats.StagesSkipped)/float64(res.Stats.Variants), "stage-skips-per-variant")
	if res.Stats.VariantsPerSec > 0 {
		b.ReportMetric(1e9/res.Stats.VariantsPerSec, "explore-ns-per-variant")
	}
}
