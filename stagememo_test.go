// The stage-memo property suite: the per-stage compilation memo
// (internal/stagecache, DESIGN.md §15) is an accelerator, never an
// input. Every bundled example program, on every bundled family, is
// compiled three ways — an /explore lattice sweep, a one-op edit
// replay, and a nocascade flip — and every memoized artifact must be
// byte-identical on its deterministic surface to a cold compile of the
// same source on a compiler that has never seen anything. Run under
// -race, the warm sweeps also exercise concurrent stage-cache access.
package reticle

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"reticle/internal/stagecache"
	"reticle/internal/target/agilex"
)

// memoFamilies are the bundled (target, device) pairs under test.
func memoFamilies() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"ultrascale", Options{}},
		{"agilex", Options{Target: agilex.Target(), Device: agilex.Device()}},
	}
}

// stableSurface renders every deterministic field of an artifact — the
// fields that reach the wire — so cold and memoized compiles can be
// compared byte-for-byte. Timings, solver counters, warm-start
// attribution, and StagesSkipped are process-local and excluded, same
// as the service's deterministic-payload contract.
func stableSurface(a *Artifact) string {
	return fmt.Sprintf("asm:%s\nplaced:%s\nverilog:%s\nluts:%d dsps:%d ffs:%d carries:%d\ncrit:%g fmax:%g chains:%d\npath:%v\ndegraded:%v reason:%q",
		a.Asm.String(), a.Placed.String(), a.Verilog,
		a.LUTs, a.DSPs, a.FFs, a.Carries,
		a.CriticalNs, a.FMaxMHz, a.CascadeChains,
		a.CriticalPath, a.Degraded, a.DegradedReason)
}

var constPat = regexp.MustCompile(`const\[\d+\]`)

// oneOpEdit makes a minimal source-level edit that changes the printed
// IR (so stage keys shift) without breaking the kernel: tweak the first
// constant when the program has one, otherwise swap the operands of the
// first add (commutative, but a different instruction spelling).
func oneOpEdit(t *testing.T, src string) string {
	t.Helper()
	if loc := constPat.FindStringIndex(src); loc != nil {
		return src[:loc[0]] + "const[9]" + src[loc[1]:]
	}
	if i := strings.Index(src, "add("); i >= 0 {
		j := strings.Index(src[i:], ")")
		call := src[i : i+j]
		parts := strings.SplitN(strings.TrimPrefix(call, "add("), ", ", 2)
		if len(parts) == 2 {
			return src[:i] + "add(" + parts[1] + ", " + parts[0] + src[i+j:]
		}
	}
	t.Fatal("no editable op in program")
	return ""
}

// coldCompile compiles src on a fresh, cache-less compiler.
func coldCompile(t *testing.T, opts Options, src string) *Artifact {
	t.Helper()
	c, err := NewCompilerWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseIR(src)
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func TestStageMemoByteIdentityEditReplay(t *testing.T) {
	progs := examplePrograms(t)
	for _, fam := range memoFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for name, src := range progs {
				name, src := name, src
				t.Run(name, func(t *testing.T) {
					edited := oneOpEdit(t, src)
					c, err := NewCompilerWith(fam.opts)
					if err != nil {
						t.Fatal(err)
					}
					c.cfg.StageCache = stagecache.New(256)

					compileMemo := func(s string) *Artifact {
						f, err := ParseIR(s)
						if err != nil {
							t.Fatal(err)
						}
						art, err := c.Compile(f)
						if err != nil {
							t.Fatal(err)
						}
						return art
					}

					// Fill (cold through the memo), then replay: every stage
					// must hit, and the artifact must not move.
					fill := compileMemo(src)
					if fill.StagesSkipped != 0 {
						t.Fatalf("first compile skipped %d stages through an empty memo", fill.StagesSkipped)
					}
					warm := compileMemo(src)
					if warm.StagesSkipped == 0 {
						t.Error("replay compile skipped no stages: stage keys are unstable")
					}
					ref := coldCompile(t, fam.opts, src)
					if got, want := stableSurface(warm), stableSurface(ref); got != want {
						t.Errorf("memoized replay differs from cold compile:\n--- memoized\n%s\n--- cold\n%s", got, want)
					}
					if stableSurface(fill) != stableSurface(ref) {
						t.Error("fill compile differs from cold compile")
					}

					// The edit: a different kernel compiled through the warm
					// memo must equal its own cold compile — shared stages are
					// reused, diverged stages recomputed, output unchanged.
					memoEdit := compileMemo(edited)
					refEdit := coldCompile(t, fam.opts, edited)
					if got, want := stableSurface(memoEdit), stableSurface(refEdit); got != want {
						t.Errorf("memoized edit differs from cold compile of the edit:\n--- memoized\n%s\n--- cold\n%s", got, want)
					}
					if stableSurface(refEdit) == stableSurface(ref) {
						t.Error("one-op edit produced a byte-identical artifact: the edit is not an edit")
					}
				})
			}
		})
	}
}

func TestStageMemoByteIdentityNoCascadeFlip(t *testing.T) {
	progs := examplePrograms(t)
	for _, fam := range memoFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for name, src := range progs {
				name, src := name, src
				t.Run(name, func(t *testing.T) {
					sc := stagecache.New(256)
					c, err := NewCompilerWith(fam.opts)
					if err != nil {
						t.Fatal(err)
					}
					c.cfg.StageCache = sc
					f, err := ParseIR(src)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := c.Compile(f); err != nil {
						t.Fatal(err)
					}

					// Flip NoCascade on a compiler sharing the same memo: the
					// select stage is cascade-independent, so the flipped
					// compile shares it, and everything downstream recomputes
					// to exactly the cold flipped artifact.
					flipOpts := fam.opts
					flipOpts.NoCascade = true
					cf, err := NewCompilerWith(flipOpts)
					if err != nil {
						t.Fatal(err)
					}
					cf.cfg.StageCache = sc
					ff, err := ParseIR(src)
					if err != nil {
						t.Fatal(err)
					}
					flipped, err := cf.Compile(ff)
					if err != nil {
						t.Fatal(err)
					}
					if flipped.StagesSkipped == 0 {
						t.Error("nocascade flip shared no stages: select keys leaked a cascade-only field")
					}
					ref := coldCompile(t, flipOpts, src)
					if got, want := stableSurface(flipped), stableSurface(ref); got != want {
						t.Errorf("memoized nocascade compile differs from cold:\n--- memoized\n%s\n--- cold\n%s", got, want)
					}
				})
			}
		})
	}
}

func TestStageMemoByteIdentityExplore(t *testing.T) {
	progs := examplePrograms(t)
	for _, fam := range memoFamilies() {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for name, src := range progs {
				name, src := name, src
				t.Run(name, func(t *testing.T) {
					ctx := context.Background()
					f, err := ParseIR(src)
					if err != nil {
						t.Fatal(err)
					}
					opts := ExploreOptions{Jobs: 4}

					cold, err := func() (*ExploreResult, error) {
						c, err := NewCompilerWith(fam.opts)
						if err != nil {
							t.Fatal(err)
						}
						return c.Explore(ctx, f, opts)
					}()
					if err != nil {
						t.Fatal(err)
					}

					c, err := NewCompilerWith(fam.opts)
					if err != nil {
						t.Fatal(err)
					}
					c.cfg.StageCache = stagecache.New(1024)
					fill, err := c.Explore(ctx, f, opts)
					if err != nil {
						t.Fatal(err)
					}
					warm, err := c.Explore(ctx, f, opts)
					if err != nil {
						t.Fatal(err)
					}
					if warm.Stats.StagesSkipped == 0 {
						t.Error("warm repeat sweep skipped no stages")
					}

					for _, res := range []*ExploreResult{fill, warm} {
						if len(res.Variants) != len(cold.Variants) {
							t.Fatalf("lattice size moved: %d vs %d", len(res.Variants), len(cold.Variants))
						}
						for i := range res.Variants {
							mv, cv := res.Variants[i], cold.Variants[i]
							if mv.ID != cv.ID || mv.Ok() != cv.Ok() {
								t.Fatalf("variant %d identity moved: %s/%v vs %s/%v", i, mv.ID, mv.Ok(), cv.ID, cv.Ok())
							}
							if !mv.Ok() {
								continue
							}
							if got, want := stableSurface(mv.Artifact), stableSurface(cv.Artifact); got != want {
								t.Errorf("variant %s: memoized sweep differs from cold:\n--- memoized\n%s\n--- cold\n%s", mv.ID, got, want)
							}
						}
						if fmt.Sprint(res.Frontier) != fmt.Sprint(cold.Frontier) {
							t.Errorf("frontier moved:\nmemoized %v\ncold     %v", res.Frontier, cold.Frontier)
						}
					}
				})
			}
		})
	}
}
