#!/usr/bin/env sh
# bench_compare.sh — diff two BENCH_<sha>.json baselines and fail on a
# >20% regression in placement-stage metrics.
#
# The placement benchmarks (BenchmarkPlaceShrink, internal/csp
# BenchmarkSolve*) report solver-steps, shrink-probes, steps-per-probe,
# and place-ns as custom metrics, and BenchmarkEditReplay reports the
# incremental-compile series (hint-cache-hit-rate, steps-per-edit),
# and BenchmarkExplore reports the design-space sweep series
# (variants-per-sec, stage-skips-per-variant, explore-ns-per-variant);
# this compares those plus ns_per_op, B/op, and allocs/op against the
# base baseline via cmd/reticle-benchcompare. Higher-is-better metrics
# (hint-hit-rate, hint-cache-hit-rate, probes-skipped) are reported but
# never fail the check; steps-per-edit is gated, so the adoption path
# cannot silently start re-solving; explore-ns-per-variant is gated, so
# memoized sweeps cannot silently start recompiling stages; and
# allocs/op is gated, so the hot paths cannot silently start churning
# the GC.
#
# Usage: scripts/bench_compare.sh base.json head.json [threshold]
#
# Exit: 0 no regression, 1 regression or missing base baseline (a
# repo-committed BENCH_<sha>.json always exists, so an absent base
# means the bench job is miswired -- fail loudly, never skip), 2 usage.
set -eu

cd "$(dirname "$0")/.."

if [ $# -lt 2 ]; then
  echo "usage: scripts/bench_compare.sh base.json head.json [threshold]" >&2
  exit 2
fi
base="$1"
head="$2"
threshold="${3:-0.20}"

if [ ! -f "$base" ]; then
  echo "bench_compare: base baseline $base not found (expected a committed or downloaded BENCH_*.json); failing" >&2
  exit 1
fi
if [ ! -f "$head" ]; then
  echo "bench_compare: head baseline $head not found" >&2
  exit 2
fi

go run ./cmd/reticle-benchcompare -threshold "$threshold" "$base" "$head"
