#!/usr/bin/env sh
# explore_smoke.sh — end-to-end smoke test of the /explore endpoint.
#
# Builds and starts reticle-serve on a local port, sweeps one kernel's
# variant lattice twice, and checks the contract CI cares about: the
# sweep returns a non-empty Pareto frontier, the second (cache-warm)
# sweep serves byte-identical variants/frontier sections with every
# variant a cache hit, the first (jobs:1, so in-sweep stage sharing is
# deterministic) sweep drove the per-stage memo (stats stage_cache
# reports stages_skipped > 0), the streamed sweep ends in a frontier
# footer, and /stats records the sweeps.
#
# Usage: scripts/explore_smoke.sh [port]
# The port defaults to $RETICLE_SMOKE_PORT, then 18082, so CI jobs that
# run several smoke scripts side by side can pin disjoint ports.
set -eu

cd "$(dirname "$0")/.."
port="${1:-${RETICLE_SMOKE_PORT:-18082}}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "explore_smoke: FAIL: $*" >&2
    [ -f "$tmp/serve.log" ] && sed 's/^/explore_smoke: serve: /' "$tmp/serve.log" >&2
    exit 1
}

go build -o "$tmp/reticle-serve" ./cmd/reticle-serve
"$tmp/reticle-serve" -addr "127.0.0.1:$port" >"$tmp/serve.log" 2>&1 &
pid=$!

i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "server did not come up on $base"
    kill -0 "$pid" 2>/dev/null || fail "server exited early"
    sleep 0.2
done

# jobs:1 keeps the first sweep sequential, so its in-sweep stage-memo
# sharing (nocascade variants reuse their base variant's selection) is
# deterministic rather than racing the worker pool.
cat >"$tmp/req.json" <<'JSON'
{"ir": "def macc(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {\n    t0:i8 = mul(a, b) @??;\n    t1:i8 = add(t0, c) @??;\n    y:i8 = reg[0](t1, en) @??;\n}", "family": "ultrascale", "jobs": 1}
JSON

curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/explore" >"$tmp/first.json" \
    || fail "first /explore failed"
curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/explore" >"$tmp/second.json" \
    || fail "second /explore failed"

# check <file> <label>: sweep shape — every variant ok, frontier
# non-empty and drawn from the sweep, not partial. Emits the
# deterministic sections for the cold/warm byte comparison.
check() {
    python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
label = sys.argv[2]
assert doc["name"] == "macc", (label, doc["name"])
assert not doc["partial"], label
ids = set()
for v in doc["variants"]:
    assert v["ok"], (label, v)
    ids.add(v["id"])
assert doc["frontier"], label
for fp in doc["frontier"]:
    assert fp["id"] in ids, (label, fp["id"])
json.dump([doc["variants"], doc["frontier"], doc["partial"]], sys.stdout, sort_keys=True)
' "$1" "$2"
}

check "$tmp/first.json" first >"$tmp/first.det" || fail "first sweep malformed: $(cat "$tmp/first.json")"
check "$tmp/second.json" second >"$tmp/second.det" || fail "second sweep malformed: $(cat "$tmp/second.json")"
cmp -s "$tmp/first.det" "$tmp/second.det" || fail "warm sweep differs from cold sweep"

# The warm sweep must be served entirely from the cache hierarchy.
python3 -c '
import json, sys
st = json.load(open(sys.argv[1]))["stats"]
assert st["cache_hits"] == st["variants"] > 0, st
' "$tmp/second.json" || fail "warm sweep was not fully cached: $(cat "$tmp/second.json")"

# Streamed sweep: NDJSON, one line per variant, frontier footer last.
curl -fsS -X POST -H 'Accept: application/x-ndjson' \
    --data-binary @"$tmp/req.json" "$base/explore" >"$tmp/stream.ndjson" \
    || fail "streamed /explore failed"
python3 -c '
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(lines) >= 2, len(lines)
footer = lines[-1]
assert footer["frontier"], footer
assert not footer["partial"], footer
for v in lines[:-1]:
    assert v["ok"], v
' "$tmp/stream.ndjson" || fail "stream malformed: $(cat "$tmp/stream.ndjson")"

curl -fsS "$base/stats" >"$tmp/stats.json" || fail "/stats failed"
python3 -c '
import json, sys
ex = json.load(open(sys.argv[1]))["explore"]
assert ex["sweeps"] == 3, ex
assert ex["variant_cache_hits"] > 0, ex
assert ex["partial"] == 0, ex
' "$tmp/stats.json" || fail "stats explore section wrong: $(cat "$tmp/stats.json")"

# The per-stage memo must have carried weight: the sequential first
# sweep shares selection across cascade-flipped variants, so cumulative
# stages_skipped is > 0 even though the warm sweeps were whole-artifact
# hits — and the frontier above was byte-identical throughout, so the
# memo changed nothing but the work done.
python3 -c '
import json, sys
st = json.load(open(sys.argv[1]))
sc = st["stage_cache"]
assert sc["stages_skipped"] > 0, sc
hits = sum(sc[s]["hits"] for s in ("select", "cascade", "place", "output"))
stores = sum(sc[s]["stores"] for s in ("select", "cascade", "place", "output"))
assert hits > 0 and stores > 0, sc
assert st["mem"]["heap_alloc_bytes"] > 0, st["mem"]
' "$tmp/stats.json" || fail "stats stage_cache section wrong: $(cat "$tmp/stats.json")"

kill -TERM "$pid"
wait "$pid" || fail "server did not drain cleanly on SIGTERM"
pid=""

echo "explore_smoke: OK (frontier, warm byte-identical + fully cached, stage memo engaged, stream footer, stats)"
