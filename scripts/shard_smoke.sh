#!/usr/bin/env sh
# shard_smoke.sh — end-to-end smoke test of the distributed compile
# tier: real processes, real ports, real failure.
#
# Starts two reticle-serve backends and one reticle-shard router (with
# a router-local disk cache), then drives the tier the way an operator
# would watch it fail: a compile through the router must miss, the
# rerun must hit without touching a backend, and after one backend is
# SIGKILLed a fresh kernel must still compile — re-hashed onto the
# survivor with /healthz reporting the corpse. CI runs this so "the
# shard binaries actually route" is checked per PR, not just the
# in-process httptest chaos suite.
#
# Usage: scripts/shard_smoke.sh [base-port]
# Uses base-port..base-port+2; defaults to $RETICLE_SMOKE_PORT, then
# 18090.
set -eu

cd "$(dirname "$0")/.."
base_port="${1:-${RETICLE_SMOKE_PORT:-18090}}"
b1_port="$base_port"
b2_port="$((base_port + 1))"
rt_port="$((base_port + 2))"
router="http://127.0.0.1:$rt_port"
tmp="$(mktemp -d)"
pids=""

cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    for p in $pids; do wait "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "shard_smoke: FAIL: $*" >&2
    for log in serve1 serve2 shard; do
        [ -f "$tmp/$log.log" ] && sed "s/^/shard_smoke: $log: /" "$tmp/$log.log" >&2
    done
    exit 1
}

wait_up() { # wait_up <url> <what>
    i=0
    until curl -fsS "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] && fail "$2 did not come up on $1"
        sleep 0.2
    done
}

go build -o "$tmp/reticle-serve" ./cmd/reticle-serve
go build -o "$tmp/reticle-shard" ./cmd/reticle-shard

"$tmp/reticle-serve" -addr "127.0.0.1:$b1_port" >"$tmp/serve1.log" 2>&1 &
b1_pid=$!
pids="$pids $b1_pid"
"$tmp/reticle-serve" -addr "127.0.0.1:$b2_port" >"$tmp/serve2.log" 2>&1 &
b2_pid=$!
pids="$pids $b2_pid"
wait_up "http://127.0.0.1:$b1_port" "backend 1"
wait_up "http://127.0.0.1:$b2_port" "backend 2"

"$tmp/reticle-shard" -addr "127.0.0.1:$rt_port" \
    -backends "http://127.0.0.1:$b1_port,http://127.0.0.1:$b2_port" \
    -health-interval 500ms -proxy-timeout 5s -hedge-after 150ms \
    -disk "$tmp/diskcache" -scrub-on-start >"$tmp/shard.log" 2>&1 &
rt_pid=$!
pids="$pids $rt_pid"
wait_up "$router" "router"
curl -fsS "$router/healthz" | grep -q '"alive":true' || fail "router sees no live backend"

cat >"$tmp/req.json" <<'JSON'
{"ir": "def macc(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {\n    t0:i8 = mul(a, b) @??;\n    t1:i8 = add(t0, c) @??;\n    y:i8 = reg[0](t1, en) @??;\n}", "family": "ultrascale"}
JSON

# Routed compile: miss, then a rerun served by the router's disk tier
# (zero new proxy traffic), byte-identical artifact.
curl -fsS -X POST --data-binary @"$tmp/req.json" "$router/compile" >"$tmp/first.json" \
    || fail "routed /compile failed"
grep -q '"cache":"miss"' "$tmp/first.json" || fail "first routed compile: $(cat "$tmp/first.json")"
curl -fsS -X POST --data-binary @"$tmp/req.json" "$router/compile" >"$tmp/second.json" \
    || fail "routed /compile rerun failed"
grep -q '"cache":"hit"' "$tmp/second.json" || fail "rerun was not a hit: $(cat "$tmp/second.json")"
curl -fsS "$router/stats" >"$tmp/stats.json" || fail "router /stats failed"
grep -q '"disk_hits":1' "$tmp/stats.json" || fail "router disk never hit: $(cat "$tmp/stats.json")"
grep -q '"proxied":1' "$tmp/stats.json" || fail "rerun was proxied: $(cat "$tmp/stats.json")"

# Tail-tolerance probe: wedge backend 1 with SIGSTOP (it accepts
# connections and then stalls — the pathological slow peer), fire a
# burst of structurally new kernels, and SIGKILL the wedged backend
# while requests are mid-hedge. Every request must still be served —
# by the hedge winner or by post-kill re-hash — and at least one hedge
# must have fired.
kill -STOP "$b1_pid" 2>/dev/null || fail "could not SIGSTOP backend 1"
hedge_pids=""
i=0
while [ "$i" -lt 10 ]; do
    i=$((i + 1))
    # Routing hashes kernel *structure*, so each burst kernel is an
    # add chain of a different depth — the burst spreads across both
    # ring positions and some primaries are guaranteed to be wedged.
    body="    t0:i8 = add(a, b) @??;\n"
    prev="t0"
    j=0
    while [ "$j" -lt "$i" ]; do
        j=$((j + 1))
        body="$body    t$((i + j)):i8 = add($prev, b) @??;\n"
        prev="t$((i + j))"
    done
    printf '{"ir": "def hw%s(a:i8, b:i8) -> (y:i8) {\\n%s    y:i8 = add(%s, a) @??;\\n}", "family": "ultrascale", "timeout_ms": 10000}' \
        "$i" "$body" "$prev" >"$tmp/hedge$i.json"
    curl -fsS -X POST --data-binary @"$tmp/hedge$i.json" "$router/compile" \
        >"$tmp/hedge$i.out" 2>/dev/null &
    hedge_pids="$hedge_pids $!"
done
sleep 0.3
# Kill the wedged backend mid-hedge: in-flight primaries error out and
# the hedge winners' (or re-hashed) responses must be the ones served.
kill -9 "$b1_pid" 2>/dev/null || true
kill -CONT "$b1_pid" 2>/dev/null || true
wait "$b1_pid" 2>/dev/null || true
for p in $hedge_pids; do
    wait "$p" || fail "a compile against the wedged tier failed"
done
i=0
while [ "$i" -lt 10 ]; do
    i=$((i + 1))
    grep -q '"verilog":' "$tmp/hedge$i.out" \
        || fail "hedge burst kernel $i served no artifact: $(cat "$tmp/hedge$i.out")"
done
curl -fsS "$router/stats" >"$tmp/stats2.json" || fail "router /stats failed after hedge burst"
if grep -q '"hedges":0' "$tmp/stats2.json"; then
    fail "no hedge fired against the wedged backend: $(cat "$tmp/stats2.json")"
fi

# A structurally new kernel (so the disk tier cannot answer) must still
# compile: the router re-hashes it onto the survivor.

cat >"$tmp/req2.json" <<'JSON'
{"ir": "def after(a:i8, b:i8) -> (y:i8) {\n    t0:i8 = add(a, b) @??;\n    y:i8 = add(t0, b) @??;\n}", "family": "ultrascale"}
JSON
curl -fsS -X POST --data-binary @"$tmp/req2.json" "$router/compile" >"$tmp/after.json" \
    || fail "compile after backend kill failed"
grep -q '"verilog":' "$tmp/after.json" || fail "post-kill compile has no artifact: $(cat "$tmp/after.json")"

# The router's health view converges on the corpse (active prober runs
# every 200ms; give it a moment).
i=0
until curl -fsS "$router/healthz" | grep -q '"alive":false'; do
    i=$((i + 1))
    [ "$i" -ge 25 ] && fail "router never marked the killed backend dead: $(curl -fsS "$router/healthz")"
    sleep 0.2
done
curl -fsS "$router/healthz" | grep -q '"alive":true' || fail "survivor marked dead too"

# Graceful drain.
kill -TERM "$rt_pid"
wait "$rt_pid" || fail "router did not drain cleanly on SIGTERM"
kill -TERM "$b2_pid"
wait "$b2_pid" || fail "surviving backend did not drain cleanly"
pids=""

echo "shard_smoke: OK (routed miss -> disk hit, hedges fired under wedge, backend kill absorbed, dead peer reported, clean drain)"
