#!/usr/bin/env sh
# bench_baseline.sh — record a per-commit performance baseline.
#
# Runs every benchmark once (-benchtime=1x keeps the run minutes-cheap
# while still exercising the full pipeline) with -benchmem, so B/op and
# allocs/op land in the baseline and allocation regressions gate like
# time regressions, and converts the output to BENCH_<sha>.json via
# cmd/reticle-benchjson. CI uploads the file as an artifact so the
# isel/placement perf trajectory is recorded per PR; locally, diff two
# baselines to see what a change cost.
#
# Usage: scripts/bench_baseline.sh [output-dir]
set -eu

cd "$(dirname "$0")/.."
outdir="${1:-.}"
mkdir -p "$outdir"
sha="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
short="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
out="$outdir/BENCH_${short}.json"

go test -bench=. -benchtime=1x -benchmem -run='^$' ./... \
  | go run ./cmd/reticle-benchjson -sha "$sha" -o "$out"
echo "bench baseline: $out"
