#!/usr/bin/env sh
# service_smoke.sh — end-to-end smoke test of the compile service.
#
# Builds and starts reticle-serve on a local port, then drives the real
# HTTP surface the way a client would: /healthz must answer, the first
# /compile of a kernel must be a cache miss, the second must be a cache
# hit with byte-identical Verilog, and SIGTERM must drain cleanly. CI
# runs this so "the service binary actually serves" is checked per PR,
# not just the in-process httptest suites.
#
# Usage: scripts/service_smoke.sh [port]
# The port defaults to $RETICLE_SMOKE_PORT, then 18080, so CI jobs that
# run several smoke scripts side by side can pin disjoint ports without
# editing argument lists.
set -eu

cd "$(dirname "$0")/.."
port="${1:-${RETICLE_SMOKE_PORT:-18080}}"
base="http://127.0.0.1:$port"
tmp="$(mktemp -d)"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
    echo "service_smoke: FAIL: $*" >&2
    [ -f "$tmp/serve.log" ] && sed 's/^/service_smoke: serve: /' "$tmp/serve.log" >&2
    exit 1
}

go build -o "$tmp/reticle-serve" ./cmd/reticle-serve
"$tmp/reticle-serve" -addr "127.0.0.1:$port" >"$tmp/serve.log" 2>&1 &
pid=$!

# Wait for the listener (bounded).
i=0
until curl -fsS "$base/healthz" >"$tmp/health.json" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "server did not come up on $base"
    kill -0 "$pid" 2>/dev/null || fail "server exited early"
    sleep 0.2
done
grep -q '"status":"ok"' "$tmp/health.json" || fail "healthz: $(cat "$tmp/health.json")"
grep -q 'ultrascale' "$tmp/health.json" || fail "healthz missing families: $(cat "$tmp/health.json")"

cat >"$tmp/req.json" <<'JSON'
{"ir": "def macc(a:i8, b:i8, c:i8, en:bool) -> (y:i8) {\n    t0:i8 = mul(a, b) @??;\n    t1:i8 = add(t0, c) @??;\n    y:i8 = reg[0](t1, en) @??;\n}", "family": "ultrascale"}
JSON

curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/compile" >"$tmp/first.json" \
    || fail "first /compile failed"
curl -fsS -X POST --data-binary @"$tmp/first.json" "$base/compile" >/dev/null 2>&1 \
    && fail "garbage request accepted" || true
curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/compile" >"$tmp/second.json" \
    || fail "second /compile failed"

extract() { # extract <field> <file> <out>
    python3 -c '
import json, sys
doc = json.load(open(sys.argv[2]))
field = sys.argv[1]
if field == "cache":
    print(doc["cache"])
else:
    sys.stdout.write(doc["artifact"][field])
' "$1" "$2" >"$3"
}

extract cache "$tmp/first.json" "$tmp/first.cache"
extract cache "$tmp/second.json" "$tmp/second.cache"
[ "$(cat "$tmp/first.cache")" = "miss" ] || fail "first compile was '$(cat "$tmp/first.cache")', want miss"
[ "$(cat "$tmp/second.cache")" = "hit" ] || fail "second compile was '$(cat "$tmp/second.cache")', want hit"

extract verilog "$tmp/first.json" "$tmp/first.v"
extract verilog "$tmp/second.json" "$tmp/second.v"
cmp -s "$tmp/first.v" "$tmp/second.v" || fail "hit Verilog differs from miss Verilog"
[ -s "$tmp/first.v" ] || fail "empty Verilog artifact"

curl -fsS "$base/stats" >"$tmp/stats.json" || fail "/stats failed"
grep -q '"hits":1' "$tmp/stats.json" || fail "stats did not record the hit: $(cat "$tmp/stats.json")"

# Graceful drain: SIGTERM must exit 0 after closing the listener.
kill -TERM "$pid"
wait "$pid" || fail "server did not drain cleanly on SIGTERM"
pid=""

# Load-shed probe: restart with admission control bounded and the
# admission fault armed for exactly one request (RETICLE_FAULTS, the
# operational chaos channel). The first request must shed with 429 +
# Retry-After and the stable machine code; the second, with the fault
# consumed, must compile normally — shedding is per-request, not
# sticky.
RETICLE_FAULTS='server/admission=exhausted:1' \
    "$tmp/reticle-serve" -addr "127.0.0.1:$port" -max-inflight 1 >"$tmp/serve.log" 2>&1 &
pid=$!
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "load-shed server did not come up on $base"
    kill -0 "$pid" 2>/dev/null || fail "load-shed server exited early"
    sleep 0.2
done

curl -sS -D "$tmp/shed.hdr" -o "$tmp/shed.json" -X POST \
    --data-binary @"$tmp/req.json" "$base/compile" || fail "shed probe request failed"
grep -q '429' "$tmp/shed.hdr" || fail "shed probe status: $(head -1 "$tmp/shed.hdr")"
grep -qi '^retry-after:' "$tmp/shed.hdr" || fail "429 without Retry-After: $(cat "$tmp/shed.hdr")"
grep -q '"error_code":"admission_rejected"' "$tmp/shed.json" \
    || fail "shed body missing admission_rejected: $(cat "$tmp/shed.json")"
grep -q '"class":"resource-exhausted"' "$tmp/shed.json" \
    || fail "shed body missing class: $(cat "$tmp/shed.json")"

curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/compile" >"$tmp/after.json" \
    || fail "post-shed /compile failed"
grep -q '"cache":"miss"' "$tmp/after.json" || fail "post-shed compile: $(cat "$tmp/after.json")"

kill -TERM "$pid"
wait "$pid" || fail "load-shed server did not drain cleanly on SIGTERM"
pid=""

# Self-healing probe: fill a disk cache, corrupt the artifact on disk
# (flip one byte — a torn write, a failing sector), and restart over
# the same directory with -scrub-on-start. The startup scrub must
# quarantine the rotten entry, and the recompile must serve a clean
# artifact — never a 5xx, never the corrupt bytes.
"$tmp/reticle-serve" -addr "127.0.0.1:$port" -disk "$tmp/disk" >"$tmp/serve.log" 2>&1 &
pid=$!
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "disk server did not come up on $base"
    sleep 0.2
done
curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/compile" >"$tmp/seed.json" \
    || fail "disk seed /compile failed"
kill -TERM "$pid"
wait "$pid" || fail "disk server did not drain cleanly"
pid=""

artifact_file="$(find "$tmp/disk" -maxdepth 1 -type f | head -1)"
[ -n "$artifact_file" ] || fail "no artifact file on disk after seed compile"
# Flip the last byte of the frame (the payload tail).
python3 -c '
import sys
path = sys.argv[1]
raw = bytearray(open(path, "rb").read())
raw[-1] ^= 0x40
open(path, "wb").write(bytes(raw))
' "$artifact_file"

"$tmp/reticle-serve" -addr "127.0.0.1:$port" -disk "$tmp/disk" -scrub-on-start \
    >"$tmp/serve.log" 2>&1 &
pid=$!
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "scrub server did not come up on $base"
    sleep 0.2
done
# The startup scrub runs in the background; wait for it to quarantine.
i=0
until curl -fsS "$base/stats" | grep -q '"disk_quarantined":1'; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "startup scrub never quarantined the corrupt entry: $(curl -fsS "$base/stats")"
    sleep 0.2
done
[ -d "$tmp/disk/quarantine" ] || fail "no quarantine directory after scrub"
curl -fsS -X POST --data-binary @"$tmp/req.json" "$base/compile" >"$tmp/healed.json" \
    || fail "post-corruption /compile failed"
grep -q '"verilog":' "$tmp/healed.json" || fail "healed compile has no artifact: $(cat "$tmp/healed.json")"
extract verilog "$tmp/healed.json" "$tmp/healed.v"
cmp -s "$tmp/first.v" "$tmp/healed.v" || fail "healed Verilog differs from the original"

kill -TERM "$pid"
wait "$pid" || fail "scrub server did not drain cleanly on SIGTERM"
pid=""

echo "service_smoke: OK (miss -> hit, identical artifact, 429 load shed, corrupt entry quarantined + healed, clean drain)"
