package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: reticle
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure4              	       1	  15180144 ns/op
BenchmarkTensorAdd/n64-8      	       1	  13429797 ns/op	        12.97 compile-speedup-base(x)	         1.363 run-speedup-base(x)
BenchmarkAblationSelector/optimal            	       2	   1403290 ns/op	        90.00 instructions
PASS
ok  	reticle	0.672s
pkg: reticle/internal/sat
BenchmarkSolve 	     100	     12345 ns/op
ok  	reticle/internal/sat	0.1s
pkg: reticle/internal/server
BenchmarkServeCold   	      30	   1238234 ns/op
BenchmarkServeCached 	      30	     67359 ns/op
ok  	reticle/internal/server	0.3s
`

func TestParse(t *testing.T) {
	base, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if base.GoOS != "linux" || base.GoArch != "amd64" || !strings.Contains(base.CPU, "Xeon") {
		t.Errorf("context headers: %+v", base)
	}
	if len(base.Benchmarks) != 6 {
		t.Fatalf("got %d benchmarks, want 6", len(base.Benchmarks))
	}
	fig4 := base.Benchmarks[0]
	if fig4.Name != "BenchmarkFigure4" || fig4.N != 1 || fig4.NsPerOp != 15180144 || fig4.Pkg != "reticle" {
		t.Errorf("fig4 = %+v", fig4)
	}
	ta := base.Benchmarks[1]
	if ta.Name != "BenchmarkTensorAdd/n64-8" {
		t.Errorf("name = %q", ta.Name)
	}
	if ta.Metrics["compile-speedup-base(x)"] != 12.97 || ta.Metrics["run-speedup-base(x)"] != 1.363 {
		t.Errorf("metrics = %v", ta.Metrics)
	}
	sel := base.Benchmarks[2]
	if sel.N != 2 || sel.Metrics["instructions"] != 90 {
		t.Errorf("sel = %+v", sel)
	}
	sat := base.Benchmarks[3]
	if sat.Pkg != "reticle/internal/sat" || sat.N != 100 || sat.NsPerOp != 12345 {
		t.Errorf("sat = %+v", sat)
	}
	// The compile-service pair rides in the same baseline so the cache's
	// cold/hit leverage is recorded per commit.
	cold, cached := base.Benchmarks[4], base.Benchmarks[5]
	if cold.Name != "BenchmarkServeCold" || cold.Pkg != "reticle/internal/server" {
		t.Errorf("cold = %+v", cold)
	}
	if cached.Name != "BenchmarkServeCached" || cached.NsPerOp != 67359 {
		t.Errorf("cached = %+v", cached)
	}
	if ratio := cold.NsPerOp / cached.NsPerOp; ratio < 2 {
		t.Errorf("sample cold/cached ratio %.1f implausibly low", ratio)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	noisy := `Benchmarking something informational
BenchmarkBroken   abc	  1 ns/op
BenchmarkReal-4   	   5	  200 ns/op
`
	base, err := Parse(strings.NewReader(noisy))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) != 1 || base.Benchmarks[0].Name != "BenchmarkReal-4" {
		t.Errorf("benchmarks = %+v", base.Benchmarks)
	}
}

func TestParseRejectsBadValue(t *testing.T) {
	bad := "BenchmarkX 	 1	 12 ns/op	 xx metric(u)\n"
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Error("malformed metric value accepted")
	}
}
