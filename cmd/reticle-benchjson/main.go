// Command reticle-benchjson converts `go test -bench` text output into a
// machine-readable JSON baseline, so CI can record a perf trajectory per
// commit and placement/selection regressions are a diff away instead of
// an anecdote.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | reticle-benchjson -sha $(git rev-parse HEAD) -o BENCH_<sha>.json
//
// Custom benchmark metrics (compile-speedup(x), reticle-DSPs, ...) are
// preserved under "metrics"; context lines (goos/goarch/cpu/pkg) are
// carried onto each benchmark entry.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the whole converted run.
type Baseline struct {
	SHA         string      `json:"sha,omitempty"`
	GeneratedAt string      `json:"generated_at"`
	GoOS        string      `json:"goos,omitempty"`
	GoArch      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// Parse converts `go test -bench` output into a Baseline. Lines that are
// neither context headers nor benchmark results (PASS, ok, test logs)
// are skipped.
func Parse(r io.Reader) (*Baseline, error) {
	base := &Baseline{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			base.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if b == nil {
			continue // a Benchmark-prefixed log line, not a result
		}
		b.Pkg = pkg
		base.Benchmarks = append(base.Benchmarks, *b)
	}
	return base, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName[-P]   N   V unit   [V unit ...]
//
// Returns (nil, nil) for lines that merely start with "Benchmark" but do
// not follow the result shape.
func parseBenchLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil
	}
	b := &Benchmark{Name: fields[0], N: n}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = val
	}
	return b, nil
}

func main() {
	sha := flag.String("sha", "", "commit hash to embed in the baseline")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	base, err := Parse(os.Stdin)
	if err != nil {
		fail(err)
	}
	base.SHA = *sha
	base.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	if len(base.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark results on stdin"))
	}

	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "reticle-benchjson: wrote %d benchmarks to %s\n", len(base.Benchmarks), *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reticle-benchjson:", err)
	os.Exit(1)
}
