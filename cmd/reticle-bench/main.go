// Command reticle-bench regenerates the paper's evaluation figures (§7):
// Figure 4 (DSP/LUT utilization of behavioral vs hand-optimized structural
// code) and Figure 13 (compile speedup, run-time speedup, and utilization
// for tensoradd, tensordot, and fsm under base/hint/reticle).
//
// Usage:
//
//	reticle-bench [-fig 4|13|all] [-bench tensoradd|tensordot|fsm] [-fast]
//	reticle-bench -ablate
//	reticle-bench -profile-place [-profile-iters N] [-cpuprofile out.pprof]
//
// -fast shortens the baseline's annealing schedule for quick smoke runs;
// the full schedule is what the compile-speedup figures are about.
// -ablate prints the design-choice ablation table instead of figures.
// -profile-place runs the placement shrink hot loop (tensordot 5x36, the
// ROADMAP profiling target) and, with -cpuprofile, writes a pprof CPU
// profile of it. -cpuprofile also works with the figure and ablation
// modes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"reticle"
	"reticle/internal/bench"
	"reticle/internal/eval"
	"reticle/internal/ir"
	"reticle/internal/isel"
	"reticle/internal/place"
	"reticle/internal/target/ultrascale"
	"reticle/internal/vivado"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 4, 13, or all")
	benchName := flag.String("bench", "", "restrict figure 13 to one benchmark")
	fast := flag.Bool("fast", false, "shorten the baseline annealing schedule")
	shrink := flag.Bool("shrink", false, "enable Reticle's shrinking passes")
	ablate := flag.Bool("ablate", false, "also print the design-choice ablation table")
	profilePlace := flag.Bool("profile-place", false,
		"run the placement shrink hot loop (tensordot 5x36) instead of figures")
	profileIters := flag.Int("profile-iters", 20, "iterations for -profile-place")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := eval.Config{Shrink: *shrink}
	if *fast {
		cfg.Anneal = vivado.AnnealOptions{Seed: 1, MovesPerCell: 100, MinMoves: 20_000}
	}

	if *profilePlace {
		if err := profilePlaceShrink(*profileIters); err != nil {
			fail(err)
		}
		return
	}

	if *ablate {
		if err := ablations(); err != nil {
			fail(err)
		}
		return
	}

	if *fig == "4" || *fig == "all" {
		if err := figure4(cfg); err != nil {
			fail(err)
		}
	}
	if *fig == "13" || *fig == "all" {
		benches := []struct {
			name  string
			sizes []int
		}{
			{"tensoradd", eval.TensorAddSizes},
			{"tensordot", eval.TensorDotSizes},
			{"fsm", eval.FSMSizes},
		}
		for _, b := range benches {
			if *benchName != "" && b.name != *benchName {
				continue
			}
			if err := figure13(b.name, b.sizes, cfg); err != nil {
				fail(err)
			}
		}
	}
}

func figure4(cfg eval.Config) error {
	fmt.Println("== Figure 4: resource utilization, behavioral+hint vs structural vectorized ==")
	rows, err := eval.Figure4(eval.Figure4Sizes, cfg)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatFig4(rows))
	fmt.Println()
	return nil
}

func figure13(name string, sizes []int, cfg eval.Config) error {
	fmt.Printf("== Figure 13: %s ==\n", name)
	rows, err := eval.Figure13(name, sizes, cfg)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatRows(rows))
	fmt.Println()
	sp := eval.Summarize(rows)
	fmt.Print(eval.FormatSpeedups(sp))
	fmt.Println()
	fmt.Print(eval.FormatChart(sp))
	fmt.Println()
	return nil
}

// profilePlaceShrink drives the shrink-enabled pipeline over tensordot
// 5x36 — the placement workload the ROADMAP names for solver profiling —
// and prints the solver counters per iteration. Under -cpuprofile the
// loop is what dominates the profile, so `go tool pprof` lands straight
// in the CSP search.
func profilePlaceShrink(iters int) error {
	f, err := bench.TensorDot(5, 36)
	if err != nil {
		return err
	}
	c, err := reticle.NewCompilerWith(reticle.Options{Shrink: true})
	if err != nil {
		return err
	}
	fmt.Printf("== Placement shrink profile: tensordot 5x36, %d iterations ==\n", iters)
	t0 := time.Now()
	var art *reticle.Artifact
	for i := 0; i < iters; i++ {
		art, err = c.Compile(f)
		if err != nil {
			return err
		}
	}
	wall := time.Since(t0)
	ps := art.Place
	fmt.Printf("place stage:    %s/iter (total wall %s)\n", art.Stages.Place, wall)
	fmt.Printf("solver steps:   %d\n", ps.SolverSteps)
	fmt.Printf("shrink probes:  %d solved, %d revalidated (skipped)\n", ps.ShrinkProbes, ps.ProbesSkipped)
	if ps.HintTried > 0 {
		fmt.Printf("warm start:     %d/%d hints kept (%.0f%%)\n",
			ps.HintHits, ps.HintTried, 100*float64(ps.HintHits)/float64(ps.HintTried))
	}
	fmt.Printf("dsp bbox:       %d x %d\n",
		maxLoc(art, 0)+1, maxLoc(art, 1)+1)
	return nil
}

// maxLoc scans the placed program for the maximum DSP x (axis 0) or y
// (axis 1) coordinate.
func maxLoc(art *reticle.Artifact, axis int) int {
	best := 0
	for _, in := range art.Placed.Body {
		if in.IsWire() || in.Loc.Prim != ir.ResDsp {
			continue
		}
		v := int(in.Loc.X.Off)
		if axis == 1 {
			v = int(in.Loc.Y.Off)
		}
		if v > best {
			best = v
		}
	}
	return best
}

// ablations prints the DESIGN.md §5 design-choice comparisons.
func ablations() error {
	fmt.Println("== Ablations: design choices (DESIGN.md §5) ==")

	// 1. Optimal tree covering vs greedy maximal munch.
	f, err := bench.TensorDot(5, 18)
	if err != nil {
		return err
	}
	lib, err := isel.NewLibrary(ultrascale.Target())
	if err != nil {
		return err
	}
	opt, err := isel.SelectWithLibrary(f, lib, isel.Options{})
	if err != nil {
		return err
	}
	greedy, err := isel.SelectWithLibrary(f, lib, isel.Options{Greedy: true})
	if err != nil {
		return err
	}
	fmt.Printf("selection (tensordot 5x18):  optimal %d instructions, greedy %d\n",
		opt.AsmCount(), greedy.AsmCount())

	// 2. Cascade layout optimization on/off.
	for _, noCascade := range []bool{false, true} {
		c, err := reticle.NewCompilerWith(reticle.Options{NoCascade: noCascade})
		if err != nil {
			return err
		}
		art, err := c.Compile(f)
		if err != nil {
			return err
		}
		label := "cascade on "
		if noCascade {
			label = "cascade off"
		}
		fmt.Printf("layout (tensordot 5x18):     %s -> %.3f ns (%d chains)\n",
			label, art.CriticalNs, art.CascadeChains)
	}

	// 3. Shrinking passes on/off.
	small, err := bench.TensorDot(5, 9)
	if err != nil {
		return err
	}
	af, err := isel.SelectWithLibrary(small, lib, isel.Options{})
	if err != nil {
		return err
	}
	for _, shrink := range []bool{false, true} {
		res, err := place.Place(af, ultrascale.Device(), place.Options{Shrink: shrink})
		if err != nil {
			return err
		}
		label := "shrink off"
		if shrink {
			label = "shrink on "
		}
		fmt.Printf("placement (tensordot 5x9):   %s -> DSP bbox (%d x %d), %d solver steps\n",
			label, res.MaxX[ir.ResDsp]+1, res.MaxY[ir.ResDsp]+1, res.SolverSteps)
	}

	// 4. Timing-driven refinement on/off.
	dot, err := bench.TensorDot(2, 6)
	if err != nil {
		return err
	}
	for _, td := range []bool{false, true} {
		c, err := reticle.NewCompilerWith(reticle.Options{TimingDriven: td})
		if err != nil {
			return err
		}
		art, err := c.Compile(dot)
		if err != nil {
			return err
		}
		label := "refine off"
		if td {
			label = "refine on "
		}
		fmt.Printf("timing-driven (tensordot):   %s -> %.3f ns, compiled in %s\n",
			label, art.CriticalNs, art.CompileDur)
	}
	fmt.Println()
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reticle-bench:", err)
	os.Exit(1)
}
