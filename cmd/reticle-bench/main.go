// Command reticle-bench regenerates the paper's evaluation figures (§7):
// Figure 4 (DSP/LUT utilization of behavioral vs hand-optimized structural
// code) and Figure 13 (compile speedup, run-time speedup, and utilization
// for tensoradd, tensordot, and fsm under base/hint/reticle).
//
// Usage:
//
//	reticle-bench [-fig 4|13|all] [-bench tensoradd|tensordot|fsm] [-fast]
//	reticle-bench -ablate
//
// -fast shortens the baseline's annealing schedule for quick smoke runs;
// the full schedule is what the compile-speedup figures are about.
// -ablate prints the design-choice comparison table instead of figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"reticle"
	"reticle/internal/bench"
	"reticle/internal/eval"
	"reticle/internal/ir"
	"reticle/internal/isel"
	"reticle/internal/place"
	"reticle/internal/target/ultrascale"
	"reticle/internal/vivado"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 4, 13, or all")
	benchName := flag.String("bench", "", "restrict figure 13 to one benchmark")
	fast := flag.Bool("fast", false, "shorten the baseline annealing schedule")
	shrink := flag.Bool("shrink", false, "enable Reticle's shrinking passes")
	ablate := flag.Bool("ablate", false, "also print the design-choice ablation table")
	flag.Parse()

	cfg := eval.Config{Shrink: *shrink}
	if *fast {
		cfg.Anneal = vivado.AnnealOptions{Seed: 1, MovesPerCell: 100, MinMoves: 20_000}
	}

	if *ablate {
		if err := ablations(); err != nil {
			fail(err)
		}
		return
	}

	if *fig == "4" || *fig == "all" {
		if err := figure4(cfg); err != nil {
			fail(err)
		}
	}
	if *fig == "13" || *fig == "all" {
		benches := []struct {
			name  string
			sizes []int
		}{
			{"tensoradd", eval.TensorAddSizes},
			{"tensordot", eval.TensorDotSizes},
			{"fsm", eval.FSMSizes},
		}
		for _, b := range benches {
			if *benchName != "" && b.name != *benchName {
				continue
			}
			if err := figure13(b.name, b.sizes, cfg); err != nil {
				fail(err)
			}
		}
	}
}

func figure4(cfg eval.Config) error {
	fmt.Println("== Figure 4: resource utilization, behavioral+hint vs structural vectorized ==")
	rows, err := eval.Figure4(eval.Figure4Sizes, cfg)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatFig4(rows))
	fmt.Println()
	return nil
}

func figure13(name string, sizes []int, cfg eval.Config) error {
	fmt.Printf("== Figure 13: %s ==\n", name)
	rows, err := eval.Figure13(name, sizes, cfg)
	if err != nil {
		return err
	}
	fmt.Print(eval.FormatRows(rows))
	fmt.Println()
	sp := eval.Summarize(rows)
	fmt.Print(eval.FormatSpeedups(sp))
	fmt.Println()
	fmt.Print(eval.FormatChart(sp))
	fmt.Println()
	return nil
}

// ablations prints the DESIGN.md §5 design-choice comparisons.
func ablations() error {
	fmt.Println("== Ablations: design choices (DESIGN.md §5) ==")

	// 1. Optimal tree covering vs greedy maximal munch.
	f, err := bench.TensorDot(5, 18)
	if err != nil {
		return err
	}
	lib, err := isel.NewLibrary(ultrascale.Target())
	if err != nil {
		return err
	}
	opt, err := isel.SelectWithLibrary(f, lib, isel.Options{})
	if err != nil {
		return err
	}
	greedy, err := isel.SelectWithLibrary(f, lib, isel.Options{Greedy: true})
	if err != nil {
		return err
	}
	fmt.Printf("selection (tensordot 5x18):  optimal %d instructions, greedy %d\n",
		opt.AsmCount(), greedy.AsmCount())

	// 2. Cascade layout optimization on/off.
	for _, noCascade := range []bool{false, true} {
		c, err := reticle.NewCompilerWith(reticle.Options{NoCascade: noCascade})
		if err != nil {
			return err
		}
		art, err := c.Compile(f)
		if err != nil {
			return err
		}
		label := "cascade on "
		if noCascade {
			label = "cascade off"
		}
		fmt.Printf("layout (tensordot 5x18):     %s -> %.3f ns (%d chains)\n",
			label, art.CriticalNs, art.CascadeChains)
	}

	// 3. Shrinking passes on/off.
	small, err := bench.TensorDot(5, 9)
	if err != nil {
		return err
	}
	af, err := isel.SelectWithLibrary(small, lib, isel.Options{})
	if err != nil {
		return err
	}
	for _, shrink := range []bool{false, true} {
		res, err := place.Place(af, ultrascale.Device(), place.Options{Shrink: shrink})
		if err != nil {
			return err
		}
		label := "shrink off"
		if shrink {
			label = "shrink on "
		}
		fmt.Printf("placement (tensordot 5x9):   %s -> DSP bbox (%d x %d), %d solver steps\n",
			label, res.MaxX[ir.ResDsp]+1, res.MaxY[ir.ResDsp]+1, res.SolverSteps)
	}

	// 4. Timing-driven refinement on/off.
	dot, err := bench.TensorDot(2, 6)
	if err != nil {
		return err
	}
	for _, td := range []bool{false, true} {
		c, err := reticle.NewCompilerWith(reticle.Options{TimingDriven: td})
		if err != nil {
			return err
		}
		art, err := c.Compile(dot)
		if err != nil {
			return err
		}
		label := "refine off"
		if td {
			label = "refine on "
		}
		fmt.Printf("timing-driven (tensordot):   %s -> %.3f ns, compiled in %s\n",
			label, art.CriticalNs, art.CompileDur)
	}
	fmt.Println()
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reticle-bench:", err)
	os.Exit(1)
}
