// Command reticle-shard is the distributed compile tier's router: it
// fronts N reticle-serve backends, consistent-hashing each kernel's
// content-addressed cache key so the same kernel always lands on the
// same backend (keeping every backend's artifact LRU hot for its slice
// of the key space), health-checks the backends, re-hashes requests
// off dead peers, and optionally keeps a router-local persistent disk
// cache that serves repeat kernels without any network traffic.
//
// Usage:
//
//	reticle-shard -backends http://h1:8080,http://h2:8080 [-addr :8090]
//	              [-replicas 64] [-jobs 8] [-proxy-timeout 60s]
//	              [-health-interval 2s] [-disk DIR] [-disk-bytes N]
//	              [-max-body 1048576] [-hedge-after 300ms] [-scrub-on-start]
//	              [-pprof ADDR]
//
// The endpoint surface is identical to reticle-serve (POST /compile,
// POST /batch with buffered or NDJSON-streaming framing, GET /healthz,
// GET /stats), so clients point at the router unchanged. The backend
// list's ORDER is identity on the hash ring: keep it stable across
// router restarts and every backend keeps its keys.
//
// SIGINT/SIGTERM drain gracefully, like reticle-serve.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof: /debug/pprof on a side listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reticle"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backendsFlag := flag.String("backends", "", "comma-separated backend base URLs (required; order is ring identity)")
	replicas := flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = default)")
	jobs := flag.Int("jobs", 0, "concurrent per-kernel proxy fan-out for /batch (0 = default)")
	proxyTimeout := flag.Duration("proxy-timeout", 60*time.Second, "per-attempt proxy deadline (0 = none)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "active backend probe period (0 = passive detection only)")
	diskDir := flag.String("disk", "", "router-local persistent artifact cache directory (empty = disabled)")
	diskBytes := flag.Int64("disk-bytes", 0, "disk cache size bound in bytes (0 = default)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain bound for in-flight requests")
	hedgeAfter := flag.Duration("hedge-after", 0, "fire one speculative /compile attempt at the next ring backend after this delay (0 = no hedging)")
	scrubOnStart := flag.Bool("scrub-on-start", false, "verify the disk cache's checksums in the background on startup, quarantining corrupt entries")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof (/debug/pprof) on this side address (empty = disabled)")
	flag.Parse()

	var backends []string
	for _, b := range strings.Split(*backendsFlag, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, strings.TrimSuffix(b, "/"))
		}
	}
	if len(backends) == 0 {
		log.Fatal("reticle-shard: -backends is required (comma-separated reticle-serve URLs)")
	}

	rt, err := reticle.NewShardRouter(reticle.ShardOptions{
		Backends:       backends,
		Replicas:       *replicas,
		Jobs:           *jobs,
		ProxyTimeout:   *proxyTimeout,
		HealthInterval: *healthInterval,
		DiskDir:        *diskDir,
		DiskMaxBytes:   *diskBytes,
		MaxBodyBytes:   *maxBody,
		HedgeAfter:     *hedgeAfter,
	})
	if err != nil {
		log.Fatal("reticle-shard: ", err)
	}

	if *pprofAddr != "" {
		// The router mux is private, so DefaultServeMux carries only the
		// pprof registrations; keep the profiler off the proxy address.
		go func() {
			log.Printf("reticle-shard: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("reticle-shard: pprof listener failed: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *scrubOnStart {
		go func() {
			rep, ok, err := rt.ScrubDisk(ctx, 0)
			switch {
			case !ok:
				log.Printf("reticle-shard: -scrub-on-start: no disk cache configured (-disk), nothing to scrub")
			case err != nil:
				log.Printf("reticle-shard: startup scrub interrupted: %v", err)
			default:
				log.Printf("reticle-shard: startup scrub: %d entries verified, %d corrupt quarantined (%d bytes in %s)",
					rep.Scanned, rep.Corrupt, rep.Bytes, rep.Elapsed)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- rt.ListenAndServe(*addr) }()
	log.Printf("reticle-shard: listening on %s, %d backends (families %v)",
		*addr, len(backends), rt.Families())

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("reticle-shard: ", err)
		}
	case <-ctx.Done():
		log.Printf("reticle-shard: signal received, draining (bound %s)", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := rt.Shutdown(dctx); err != nil {
			log.Fatal("reticle-shard: drain: ", err)
		}
	}
}
