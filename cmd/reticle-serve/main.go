// Command reticle-serve is the long-running Reticle compile service: an
// HTTP front end over the concurrent batch compiler with a
// content-addressed artifact cache, so repeated and concurrent requests
// for the same kernel compile once and hit thereafter.
//
// Usage:
//
//	reticle-serve [-addr :8080] [-cache 512] [-jobs 0] [-timeout 30s] [-max-body 1048576]
//	              [-max-inflight 0] [-disk DIR] [-disk-bytes N]
//	              [-hint-cache 512] [-no-hint-cache] [-explore-variants 0]
//	              [-stage-cache 512] [-no-stage-cache]
//	              [-scrub-on-start] [-pprof ADDR]
//
// Endpoints (all JSON; see README "Compile service"):
//
//	POST /compile  {"ir": "def f(...) ...", "family": "ultrascale"}
//	POST /batch    {"kernels": [{"ir": "..."}, ...], "jobs": 4}
//	POST /explore  {"ir": "def f(...) ...", "max_variants": 16}
//	GET  /healthz
//	GET  /stats
//
// SIGINT/SIGTERM drain gracefully: listeners close, in-flight compiles
// finish (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof: /debug/pprof on a side listener
	"os"
	"os/signal"
	"syscall"
	"time"

	"reticle"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 0, "artifact cache entries (0 = default)")
	jobs := flag.Int("jobs", 0, "default /batch worker bound (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request compile deadline (0 = none)")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain bound for in-flight requests")
	maxInFlight := flag.Int("max-inflight", 0, "admitted concurrent compile/batch requests before shedding 429s (0 = unlimited)")
	diskDir := flag.String("disk", "", "persistent second-level artifact cache directory (empty = disabled)")
	diskBytes := flag.Int64("disk-bytes", 0, "disk cache size bound in bytes (0 = default)")
	hintEntries := flag.Int("hint-cache", 0, "placement hint cache entries (0 = default); with -disk, hints persist under DIR/hints")
	noHints := flag.Bool("no-hint-cache", false, "disable the placement hint cache (every compile solves cold)")
	exploreVariants := flag.Int("explore-variants", 0, "per-request /explore variant cap (0 = hard default)")
	stageEntries := flag.Int("stage-cache", 0, "per-stage compilation memo entries (0 = default); with -disk, stage results persist under DIR/stages")
	noStages := flag.Bool("no-stage-cache", false, "disable the per-stage compilation memo (every artifact-cache miss recomputes all stages)")
	scrubOnStart := flag.Bool("scrub-on-start", false, "verify the disk cache's checksums in the background on startup, quarantining corrupt entries")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof (/debug/pprof) on this side address (empty = disabled)")
	flag.Parse()

	srv, err := reticle.NewServer(reticle.ServerOptions{
		CacheEntries:       *cacheEntries,
		MaxBodyBytes:       *maxBody,
		DefaultTimeout:     *timeout,
		Jobs:               *jobs,
		MaxInFlight:        *maxInFlight,
		DiskDir:            *diskDir,
		DiskMaxBytes:       *diskBytes,
		HintCacheEntries:   *hintEntries,
		NoHintCache:        *noHints,
		MaxExploreVariants: *exploreVariants,
		StageCacheEntries:  *stageEntries,
		NoStageCache:       *noStages,
	})
	if err != nil {
		log.Fatal("reticle-serve: ", err)
	}

	if *pprofAddr != "" {
		// The service mux is private, so DefaultServeMux carries only the
		// pprof registrations; keep the profiler off the service address.
		go func() {
			log.Printf("reticle-serve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("reticle-serve: pprof listener failed: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *scrubOnStart {
		go func() {
			rep, ok, err := srv.ScrubDisk(ctx, 0)
			switch {
			case !ok:
				log.Printf("reticle-serve: -scrub-on-start: no disk cache configured (-disk), nothing to scrub")
			case err != nil:
				log.Printf("reticle-serve: startup scrub interrupted: %v", err)
			default:
				log.Printf("reticle-serve: startup scrub: %d entries verified, %d corrupt quarantined (%d bytes in %s)",
					rep.Scanned, rep.Corrupt, rep.Bytes, rep.Elapsed)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("reticle-serve: listening on %s (families %v)", *addr, srv.Families())

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("reticle-serve: ", err)
		}
	case <-ctx.Done():
		log.Printf("reticle-serve: signal received, draining (bound %s)", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			log.Fatal("reticle-serve: drain: ", err)
		}
		st := srv.CacheStats()
		fmt.Fprintf(os.Stderr,
			"reticle-serve: drained; cache %d/%d entries, %.0f%% hit rate, %d compiles\n",
			st.Entries, st.MaxEntries, 100*st.HitRate(), st.Computes)
	}
}
