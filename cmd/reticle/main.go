// Command reticle is the Reticle compiler driver. It compiles intermediate
// programs to placed structural Verilog (the Fig. 7 pipeline), interprets
// programs against traces (optionally dumping VCD waveforms), expands
// assembly back to IR, translates to the behavioral baselines, and dumps
// the bundled target description.
//
// Usage:
//
//	reticle compile [-emit ir|asm|place|verilog|stats] [-shrink] [-no-cascade] [-greedy] file.ret
//	reticle interp  [-cycles n] [-set name=v1,v2,...]... [-vcd file] file.ret
//	reticle expand  file.rasm
//	reticle behav   [-hint] file.ret
//	reticle opt     [-vectorize n] [-pipeline] [-bind lut|dsp|any] file.ret
//	reticle verify  [-cycles n] [-seed n] file.ret
//	reticle target  [-grep substr]
//
// File contents are Reticle IR (Fig. 5a) except for expand, which reads
// assembly (Fig. 5b). "-" reads from stdin. See internal/cli for the
// implementation.
package main

import (
	"os"

	"reticle/internal/cli"
)

func main() {
	os.Exit(cli.Run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
