package main

import (
	"regexp"
	"testing"
)

func baselines() (*Baseline, *Baseline) {
	base := &Baseline{SHA: "aaaa", Benchmarks: []Benchmark{
		{Pkg: "reticle", Name: "BenchmarkPlaceShrink", NsPerOp: 1_000_000,
			Metrics: map[string]float64{
				"solver-steps": 10, "shrink-probes": 1, "place-ns": 800_000,
				"hint-hit-rate": 0.4,
			}},
		{Pkg: "reticle/internal/csp", Name: "BenchmarkSolve-8", NsPerOp: 85_000,
			Metrics: map[string]float64{"allocs/op": 261}},
		{Pkg: "reticle", Name: "BenchmarkCompile", NsPerOp: 5_000_000},
	}}
	head := &Baseline{SHA: "bbbb", Benchmarks: []Benchmark{
		{Pkg: "reticle", Name: "BenchmarkPlaceShrink", NsPerOp: 1_050_000,
			Metrics: map[string]float64{
				"solver-steps": 10, "shrink-probes": 1, "place-ns": 820_000,
				"hint-hit-rate": 0.1, // worse, but higher-is-better: never a failure
			}},
		{Pkg: "reticle/internal/csp", Name: "BenchmarkSolve-8", NsPerOp: 84_000,
			Metrics: map[string]float64{"allocs/op": 261}},
		{Pkg: "reticle", Name: "BenchmarkCompile", NsPerOp: 50_000_000},
	}}
	return base, head
}

var placeFilter = regexp.MustCompile(`PlaceShrink|Solve|Shrink|Place`)

func countRegressed(ds []delta, threshold float64) int {
	n := 0
	for _, d := range ds {
		if d.regressed(threshold) {
			n++
		}
	}
	return n
}

// Within threshold on every placement metric: no regression, and the
// unrelated BenchmarkCompile 10x slowdown is filtered out entirely.
func TestCompareWithinThreshold(t *testing.T) {
	base, head := baselines()
	ds := compare(base, head, placeFilter)
	if len(ds) == 0 {
		t.Fatal("no deltas compared")
	}
	for _, d := range ds {
		if d.bench == "BenchmarkCompile" {
			t.Errorf("filter leaked %s into the comparison", d.bench)
		}
		if d.metric == "hint-hit-rate" {
			t.Errorf("higher-is-better metric %s compared", d.metric)
		}
	}
	if n := countRegressed(ds, 0.20); n != 0 {
		t.Errorf("regressions = %d, want 0: %+v", n, ds)
	}
}

// A >20% jump in solver-steps must be flagged.
func TestCompareFlagsStepRegression(t *testing.T) {
	base, head := baselines()
	head.Benchmarks[0].Metrics["solver-steps"] = 13 // +30%
	ds := compare(base, head, placeFilter)
	found := false
	for _, d := range ds {
		if d.metric == "solver-steps" && d.regressed(0.20) {
			found = true
		}
	}
	if !found {
		t.Errorf("solver-steps 10 -> 13 not flagged at 20%%: %+v", ds)
	}
}

// A zero base that becomes nonzero is a regression (e.g. probes that
// were all revalidated away starting to hit the solver again).
func TestCompareZeroBase(t *testing.T) {
	d := delta{base: 0, head: 5, ratio: inf()}
	if !d.regressed(0.20) {
		t.Error("0 -> 5 not flagged")
	}
	d = delta{base: 0, head: 0, ratio: 1}
	if d.regressed(0.20) {
		t.Error("0 -> 0 flagged")
	}
}

// Benchmarks present in only one file are skipped, not errors.
func TestCompareDisjointSets(t *testing.T) {
	base := &Baseline{Benchmarks: []Benchmark{{Pkg: "p", Name: "BenchmarkPlaceOld", NsPerOp: 1}}}
	head := &Baseline{Benchmarks: []Benchmark{{Pkg: "p", Name: "BenchmarkPlaceNew", NsPerOp: 2}}}
	if ds := compare(base, head, placeFilter); len(ds) != 0 {
		t.Errorf("disjoint sets produced deltas: %+v", ds)
	}
}
