// Command reticle-benchcompare diffs two BENCH_<sha>.json baselines
// (produced by scripts/bench_baseline.sh / reticle-benchjson) and fails
// when a placement-stage metric regresses past a threshold, so the
// shrink-loop speedups guarded by BenchmarkPlaceShrink cannot silently
// erode between commits.
//
// Usage:
//
//	reticle-benchcompare [-threshold 0.20] [-filter regexp] base.json head.json
//
// Only benchmarks whose name matches -filter (default: the placement
// and CSP-solver benchmarks plus BenchmarkEditReplay, BenchmarkExplore,
// and BenchmarkCompileBatch) are compared, and only on metrics where
// lower is better: ns_per_op, B/op, and allocs/op (recorded when the
// baseline ran with -benchmem) plus the counter metrics the placement
// benchmarks report (solver-steps, shrink-probes, steps-per-probe,
// steps-per-edit, place-ns) and the sweep engine's
// explore-ns-per-variant. Rate metrics where higher is better
// (hint-hit-rate, hint-cache-hit-rate, probes-skipped) are never
// treated as regressions.
//
// Exit status: 0 when no compared metric regressed, 1 on regression,
// 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Benchmark mirrors the entry shape reticle-benchjson writes.
type Benchmark struct {
	Pkg     string             `json:"pkg"`
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline mirrors the file shape reticle-benchjson writes.
type Baseline struct {
	SHA        string      `json:"sha"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// lowerIsBetter lists the custom metrics a regression check applies to.
// Everything else under "metrics" (hint-hit-rate, probes-skipped,
// speedup factors, resource counts) either improves upward or is not a
// performance axis, so it is reported but never failed on.
var lowerIsBetter = map[string]bool{
	"solver-steps":    true,
	"shrink-probes":   true,
	"steps-per-probe": true,
	"steps-per-edit":  true,
	"place-ns":        true,
	// The /explore sweep engine: warm per-variant latency.
	"explore-ns-per-variant": true,
	"B/op":                   true,
	"allocs/op":              true,
}

// delta is one compared metric of one benchmark.
type delta struct {
	bench  string
	metric string
	base   float64
	head   float64
	ratio  float64 // head/base; +Inf when base == 0 and head > 0
}

func (d delta) regressed(threshold float64) bool {
	if d.base == 0 {
		return d.head > 0
	}
	return d.ratio > 1+threshold
}

// compare pairs benchmarks by pkg+name and diffs every lower-is-better
// metric present on both sides. Benchmarks present only in one file are
// ignored: the tool guards metrics, not benchmark-set churn.
func compare(base, head *Baseline, filter *regexp.Regexp) []delta {
	byKey := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		byKey[b.Pkg+"/"+b.Name] = b
	}
	var out []delta
	for _, h := range head.Benchmarks {
		if !filter.MatchString(h.Name) {
			continue
		}
		b, ok := byKey[h.Pkg+"/"+h.Name]
		if !ok {
			continue
		}
		out = append(out, diffOne(b, h)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].bench != out[j].bench {
			return out[i].bench < out[j].bench
		}
		return out[i].metric < out[j].metric
	})
	return out
}

func diffOne(b, h Benchmark) []delta {
	var out []delta
	add := func(metric string, bv, hv float64) {
		d := delta{bench: h.Name, metric: metric, base: bv, head: hv}
		switch {
		case bv != 0:
			d.ratio = hv / bv
		case hv > 0:
			d.ratio = inf()
		default:
			d.ratio = 1
		}
		out = append(out, d)
	}
	add("ns_per_op", b.NsPerOp, h.NsPerOp)
	for metric := range lowerIsBetter {
		if metric == "ns_per_op" {
			continue
		}
		bv, bok := b.Metrics[metric]
		hv, hok := h.Metrics[metric]
		if bok && hok {
			add(metric, bv, hv)
		}
	}
	return out
}

func inf() float64 {
	var zero float64
	return 1 / zero
}

func main() {
	threshold := flag.Float64("threshold", 0.20,
		"fail when head exceeds base by more than this fraction")
	filterStr := flag.String("filter", `PlaceShrink|Solve|Shrink|Place|EditReplay|Explore|CompileBatch`,
		"regexp of benchmark names to compare (placement-stage by default)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: reticle-benchcompare [-threshold 0.20] [-filter regexp] base.json head.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	filter, err := regexp.Compile(*filterStr)
	if err != nil {
		fail(fmt.Errorf("bad -filter: %w", err))
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	head, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}

	deltas := compare(base, head, filter)
	if len(deltas) == 0 {
		fmt.Printf("benchcompare: no overlapping placement benchmarks between %s and %s (filter %q)\n",
			short(base.SHA), short(head.SHA), *filterStr)
		return
	}

	fmt.Printf("benchcompare: %s -> %s, threshold +%.0f%%\n",
		short(base.SHA), short(head.SHA), 100**threshold)
	regressions := 0
	for _, d := range deltas {
		mark := "  "
		if d.regressed(*threshold) {
			mark = "!!"
			regressions++
		}
		fmt.Printf("%s %-40s %-16s %14.2f -> %14.2f  (%+.1f%%)\n",
			mark, d.bench, d.metric, d.base, d.head, 100*(d.ratio-1))
	}
	if regressions > 0 {
		fmt.Printf("benchcompare: FAIL: %d placement metric(s) regressed > %.0f%%\n",
			regressions, 100**threshold)
		os.Exit(1)
	}
	fmt.Println("benchcompare: OK")
}

func load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func short(sha string) string {
	if len(sha) > 8 {
		return sha[:8]
	}
	if sha == "" {
		return "?"
	}
	return sha
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reticle-benchcompare:", err)
	os.Exit(2)
}
