package reticle

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden Verilog files under testdata/golden")

// TestGoldenVerilog pins the structural Verilog of the bundled example
// programs on the default (ultrascale/xczu3eg) pipeline. Any codegen,
// selection, or placement drift shows up as a reviewable diff; regenerate
// intentionally with:
//
//	go test -run TestGoldenVerilog -update .
func TestGoldenVerilog(t *testing.T) {
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"counter", "fig6", "macc", "vadd8"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("examples", "programs", name+".ret"))
			if err != nil {
				t.Fatal(err)
			}
			art, err := c.CompileString(string(src))
			if err != nil {
				t.Fatal(err)
			}
			got := art.Verilog
			path := filepath.Join("testdata", "golden", name+".v")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("generated Verilog drifted from %s (run with -update if intended)\ngot:\n%s",
					path, got)
			}
		})
	}
}
