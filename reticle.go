// Package reticle is the public API of this Reticle implementation: a
// low-level language and compiler for programming modern FPGAs (Vega et
// al., PLDI 2021).
//
// The pipeline mirrors Fig. 7 of the paper. A portable intermediate
// program is lowered by tree-covering instruction selection onto a
// family-specific assembly language, layout-optimized (DSP cascading),
// placed on a concrete device by a constraint solver, and emitted as
// structural Verilog with layout annotations:
//
//	c, _ := reticle.NewCompiler()
//	art, _ := c.CompileString(`
//	def muladd(a:i8, b:i8, c:i8) -> (y:i8) {
//	    t0:i8 = mul(a, b) @??;
//	    y:i8 = add(t0, c) @??;
//	}`)
//	fmt.Print(art.Verilog)
//
// The package also exposes the reference interpreter (Algorithm 1), the
// behavioral-Verilog baseline backends, and the baseline toolchain
// simulator used by the evaluation harness.
package reticle

import (
	"context"
	"sync"
	"time"

	"reticle/internal/asm"
	"reticle/internal/batch"
	"reticle/internal/behav"
	"reticle/internal/cache"
	"reticle/internal/cascade"
	"reticle/internal/device"
	"reticle/internal/explore"
	"reticle/internal/interp"
	"reticle/internal/ir"
	"reticle/internal/isel"
	"reticle/internal/passes"
	"reticle/internal/pipeline"
	"reticle/internal/rerr"
	"reticle/internal/server"
	"reticle/internal/shard"
	"reticle/internal/target/agilex"
	"reticle/internal/target/ultrascale"
	"reticle/internal/tdl"
	"reticle/internal/verilog"
	"reticle/internal/vivado"
)

// Core language types, re-exported for API stability.
type (
	// Func is an intermediate-language function (Fig. 5a).
	Func = ir.Func
	// Instr is one IR instruction.
	Instr = ir.Instr
	// Type is a value type: bool, iN, or iN<lanes>.
	Type = ir.Type
	// Value is a bit-accurate runtime value.
	Value = ir.Value
	// Builder constructs IR functions programmatically.
	Builder = ir.Builder
	// AsmFunc is an assembly-language function (Fig. 5b).
	AsmFunc = asm.Func
	// TargetDesc is a target description (Fig. 9).
	TargetDesc = tdl.Target
	// Device is a concrete FPGA part layout.
	Device = device.Device
	// Trace is an interpreter input or output trace.
	Trace = interp.Trace
	// Step is one clock cycle of trace values.
	Step = interp.Step
	// Module is a Verilog module AST.
	Module = verilog.Module
)

// ParseIR parses one intermediate-language function.
func ParseIR(src string) (*Func, error) { return ir.Parse(src) }

// ParseIRType parses a type in source syntax ("bool", "i8", "i8<4>").
func ParseIRType(src string) (Type, error) { return ir.ParseType(src) }

// ScalarValue builds a scalar (or bool) value of the given type.
func ScalarValue(t Type, v int64) Value { return ir.ScalarValue(t, v) }

// BoolValue builds a bool value.
func BoolValue(b bool) Value { return ir.BoolValue(b) }

// VectorValue builds a vector value from per-lane values.
func VectorValue(t Type, lanes ...int64) Value { return ir.VectorValue(t, lanes...) }

// ParseAsm parses one assembly-language function.
func ParseAsm(src string) (*AsmFunc, error) { return asm.Parse(src) }

// ParseTDL parses a target description.
func ParseTDL(name, src string) (*TargetDesc, error) { return tdl.Parse(name, src) }

// NewBuilder starts building an IR function programmatically.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// UltraScale returns the bundled UltraScale-like target description.
func UltraScale() *TargetDesc { return ultrascale.Target() }

// XCZU3EG returns the bundled evaluation device (360 DSPs, ~71k LUTs).
func XCZU3EG() *Device { return ultrascale.Device() }

// Agilex returns the bundled Agilex-like target description, the second
// family proving §4.2 portability.
func Agilex() *TargetDesc { return agilex.Target() }

// AGF014 returns the bundled Agilex-like part (400 DSPs, 96k ALMs).
func AGF014() *Device { return agilex.Device() }

// Interpret evaluates a function over an input trace (Algorithm 1).
func Interpret(f *Func, trace Trace) (Trace, error) { return interp.Run(f, trace) }

// Options configures a Compiler.
type Options struct {
	// Target is the family description; nil means the UltraScale-like
	// bundled target.
	Target *TargetDesc
	// Device is the part to place on; nil means the xczu3eg-like part.
	Device *Device
	// NoCascade disables the §5.2 layout optimization.
	NoCascade bool
	// Shrink enables the §5.3 binary-search area compaction.
	Shrink bool
	// Greedy switches instruction selection to maximal munch (ablation).
	Greedy bool
	// TimingDriven enables post-placement timing refinement, the layout
	// exploration the paper lists as future work (§1).
	TimingDriven bool
	// MaxSolverSteps bounds the placement CSP search; 0 means the solver
	// default. When the budget runs out the compiler degrades to a greedy
	// first-fit placement (valid, satcheck-verified) and marks the
	// artifact Degraded instead of failing.
	MaxSolverSteps int
	// SolverTimeout is a soft wall-clock budget for the placement solve;
	// past it the compiler degrades like MaxSolverSteps exhaustion.
	// 0 means no time budget. Excluded from cache fingerprints — degraded
	// artifacts are never cached, so the timeout cannot alias keys.
	SolverTimeout time.Duration
}

// Compiler runs the full Reticle pipeline against one target and device.
// After NewCompilerWith returns, every field the compiler holds is
// read-only shared state: Compile, CompileContext, and CompileBatch may
// be called from any number of goroutines concurrently.
type Compiler struct {
	opts Options
	cfg  pipeline.Config
}

// NewCompiler returns a compiler for the bundled UltraScale-like target
// and device.
func NewCompiler() (*Compiler, error) { return NewCompilerWith(Options{}) }

// NewCompilerWith returns a compiler with explicit options.
func NewCompilerWith(opts Options) (*Compiler, error) {
	if opts.Target == nil {
		opts.Target = ultrascale.Target()
	}
	if opts.Device == nil {
		opts.Device = ultrascale.Device()
	}
	lib, err := isel.NewLibrary(opts.Target)
	if err != nil {
		return nil, err
	}
	cascades := map[string]cascade.Variants{}
	// Cascade metadata ships with each bundled family; custom targets can
	// skip the pass or extend this map.
	switch opts.Target {
	case ultrascale.Target():
		for base, v := range ultrascale.Cascades() {
			cascades[base] = cascade.Variants{Co: v.Co, Ci: v.Ci, CoCi: v.CoCi}
		}
	case agilex.Target():
		for base, v := range agilex.Cascades() {
			cascades[base] = cascade.Variants{Co: v.Co, Ci: v.Ci, CoCi: v.CoCi}
		}
	}
	return &Compiler{
		opts: opts,
		cfg: pipeline.Config{
			Target:         opts.Target,
			Device:         opts.Device,
			Lib:            lib,
			Cascades:       cascades,
			NoCascade:      opts.NoCascade,
			Shrink:         opts.Shrink,
			Greedy:         opts.Greedy,
			TimingDriven:   opts.TimingDriven,
			MaxSolverSteps: opts.MaxSolverSteps,
			SolverTimeout:  opts.SolverTimeout,
		},
	}, nil
}

// Target returns the compiler's target description.
func (c *Compiler) Target() *TargetDesc { return c.opts.Target }

// Device returns the compiler's device.
func (c *Compiler) Device() *Device { return c.opts.Device }

// Artifact is a completed compilation. It includes per-stage wall times
// (Stages) next to the aggregate CompileDur.
type Artifact = pipeline.Artifact

// StageTimes breaks a compilation (or a batch of them) into per-stage
// wall time.
type StageTimes = pipeline.StageTimes

// CompileString compiles IR source text through the full pipeline.
func (c *Compiler) CompileString(src string) (*Artifact, error) {
	f, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Compile(f)
}

// Compile runs selection, layout optimization, placement, code generation,
// and timing analysis on an IR function.
func (c *Compiler) Compile(f *Func) (*Artifact, error) {
	return c.CompileContext(context.Background(), f)
}

// CompileContext is Compile under a context: cancellation and deadlines
// are observed at pipeline stage boundaries.
func (c *Compiler) CompileContext(ctx context.Context, f *Func) (*Artifact, error) {
	return pipeline.Compile(ctx, &c.cfg, f)
}

// Typed error taxonomy, re-exported from internal/rerr. Every pipeline,
// batch, and service failure is classified for errors.Is:
//
//	if errors.Is(err, reticle.ErrTransient) { retry() }
type (
	// ErrorClass is the retry semantics of a failure (transient /
	// permanent / resource-exhausted).
	ErrorClass = rerr.Class
	// CompileError is a classified failure with a stable machine-readable
	// Code and a client-safe Msg, reachable via errors.As.
	CompileError = rerr.Error
)

// Error classes.
const (
	// ClassUnknown marks unclassified errors (treated as permanent).
	ClassUnknown = rerr.Unknown
	// ClassTransient failures may succeed on retry.
	ClassTransient = rerr.Transient
	// ClassPermanent failures will not succeed on retry.
	ClassPermanent = rerr.Permanent
	// ClassExhausted failures ran out of a budget or resource.
	ClassExhausted = rerr.Exhausted
)

// Class sentinels for errors.Is, matching any error of that class.
var (
	// ErrTransient matches transient failures.
	ErrTransient = rerr.ErrTransient
	// ErrPermanent matches permanent failures.
	ErrPermanent = rerr.ErrPermanent
	// ErrExhausted matches budget/resource exhaustion.
	ErrExhausted = rerr.ErrExhausted
)

// ErrorClassOf reports the classification of err (ClassUnknown for
// unclassified errors; context deadline expiry is ClassExhausted,
// cancellation ClassTransient).
func ErrorClassOf(err error) ErrorClass { return rerr.ClassOf(err) }

// Batch compilation types, re-exported from internal/batch.
type (
	// BatchJob is one kernel in a CompileBatch call.
	BatchJob = batch.Job
	// BatchOptions bounds worker concurrency and per-kernel timeouts.
	BatchOptions = batch.Options
	// BatchResult is one kernel's outcome, at its submission index.
	BatchResult = batch.Result
	// BatchStats aggregates a batch run (kernels/sec, per-stage time).
	BatchStats = batch.Stats
)

// CompileBatch compiles many kernels concurrently against this compiler's
// shared target, device, and pattern library. At most opts.Jobs worker
// goroutines run at once; each kernel may be cancelled or timed out via
// ctx and opts.KernelTimeout. Results arrive in submission order with
// per-kernel errors — one failing kernel never fails the batch — and the
// output for each kernel is byte-identical to serial Compile.
func (c *Compiler) CompileBatch(ctx context.Context, fs []*Func, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	jobs := make([]BatchJob, len(fs))
	for i, f := range fs {
		jobs[i] = BatchJob{Func: f}
	}
	return batch.Compile(ctx, &c.cfg, jobs, opts)
}

// CompileBatchJobs is CompileBatch with explicit per-kernel labels.
func (c *Compiler) CompileBatchJobs(ctx context.Context, jobs []BatchJob, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	return batch.Compile(ctx, &c.cfg, jobs, opts)
}

// CompileBatch compiles many kernels concurrently with a default
// (UltraScale-like) compiler. See Compiler.CompileBatch.
func CompileBatch(ctx context.Context, fs []*Func, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	c, err := NewCompiler()
	if err != nil {
		return nil, BatchStats{}, err
	}
	return c.CompileBatch(ctx, fs, opts)
}

// Artifact caching and the compile service, re-exported from
// internal/{cache,server}.
type (
	// CompileCache is a bounded in-memory LRU of compiled artifacts,
	// keyed by content (canonical IR hash + config fingerprint), with
	// singleflight de-duplication of concurrent identical compiles.
	CompileCache = cache.Cache[*pipeline.Artifact]
	// CacheStats snapshots a CompileCache's counters.
	CacheStats = cache.Stats
	// Server is the long-running HTTP compile service (POST /compile,
	// POST /batch, GET /healthz, GET /stats).
	Server = server.Server
	// ServerOptions configures a Server (cache size, body limit,
	// default deadline, worker bound, default family).
	ServerOptions = server.Options
)

// NewCompileCache returns an artifact cache bounded to maxEntries
// (<=0 means the default, cache.DefaultEntries).
func NewCompileCache(maxEntries int) *CompileCache {
	return cache.New[*pipeline.Artifact](maxEntries)
}

// CanonicalHash returns the alpha-normalized content hash of a kernel,
// the IR half of the artifact cache key.
func CanonicalHash(f *Func) string { return ir.CanonicalHash(f) }

// CompileCached compiles f through ca: a resident artifact is returned
// immediately (hit=true), concurrent identical calls share one compile,
// and a miss runs the full pipeline and populates the cache. The same
// cache may be shared by compilers with different targets or options —
// keys include the config fingerprint, so artifacts never cross
// configs.
func (c *Compiler) CompileCached(ctx context.Context, ca *CompileCache, f *Func) (*Artifact, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key := cache.KeyFor(&c.cfg, f)
	// Degraded (fallback-placed or shrink-truncated) artifacts are served
	// to the caller that paid for them but never published to the cache:
	// the next compile gets a fresh shot at the full solver. The keep
	// predicate keeps them out of the LRU atomically, with no
	// publish-then-remove window for concurrent callers to hit.
	return ca.GetOrComputeKeep(ctx, key, func() (*Artifact, error) {
		return pipeline.Compile(ctx, &c.cfg, f)
	}, func(a *Artifact) bool { return a == nil || !a.Degraded })
}

// defaultCached backs the package-level CompileCached convenience entry
// point: one UltraScale-like compiler and one default-sized cache,
// built on first use.
var defaultCached struct {
	once sync.Once
	c    *Compiler
	ca   *CompileCache
	err  error
}

// CompileCached compiles f with the default (UltraScale-like) compiler
// through a process-wide default cache. See Compiler.CompileCached.
func CompileCached(ctx context.Context, f *Func) (*Artifact, bool, error) {
	d := &defaultCached
	d.once.Do(func() {
		d.c, d.err = NewCompiler()
		d.ca = NewCompileCache(0)
	})
	if d.err != nil {
		return nil, false, d.err
	}
	return d.c.CompileCached(ctx, d.ca, f)
}

// Design-space exploration, re-exported from internal/explore.
type (
	// ExploreOptions configures one Explore sweep (lattice bound,
	// worker bound, per-variant timeout and retry budget).
	ExploreOptions = explore.Options
	// ExploreResult is one sweep's outcome: every variant in lattice
	// order plus the non-dominated frontier in canonical order.
	ExploreResult = explore.Result
	// ExploreVariant is one candidate configuration of a kernel.
	ExploreVariant = explore.Variant
	// ExploreVariantResult is one variant's compiled, scored outcome.
	ExploreVariantResult = explore.VariantResult
	// ExploreMetrics is a variant's deterministic score: critical path
	// plus estimated area (LUTs, carries, FFs, DSPs).
	ExploreMetrics = explore.Metrics
	// FrontierPoint is one non-dominated variant.
	FrontierPoint = explore.FrontierPoint
)

// EnumerateVariants builds the bounded, deterministic variant lattice
// for one kernel (0 means explore.DefaultMaxVariants).
func EnumerateVariants(f *Func, maxVariants int) ([]ExploreVariant, error) {
	return explore.Enumerate(f, maxVariants)
}

// Explore sweeps f's variant lattice — binding flips, cascade toggles,
// vector splits — compiling every variant under this compiler's config
// and scoring each on critical path and estimated area. The result
// carries every variant plus the Pareto frontier; individual variant
// failures mark it Partial.
func (c *Compiler) Explore(ctx context.Context, f *Func, opts ExploreOptions) (*ExploreResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return explore.Run(ctx, &c.cfg, f, opts)
}

// NewServer builds the HTTP compile service over both bundled families
// ("ultrascale" is the default family, "agilex" the second) with the
// artifact cache in front. Drive it with Server.Start/ListenAndServe
// and drain it with Server.Shutdown; it also implements http.Handler
// for embedding. cmd/reticle-serve is the standalone daemon.
func NewServer(opts ServerOptions) (*Server, error) {
	us, err := NewCompilerWith(Options{})
	if err != nil {
		return nil, err
	}
	ag, err := NewCompilerWith(Options{Target: agilex.Target(), Device: agilex.Device()})
	if err != nil {
		return nil, err
	}
	if opts.DefaultFamily == "" {
		opts.DefaultFamily = "ultrascale"
	}
	return server.New(opts, map[string]*pipeline.Config{
		"ultrascale": &us.cfg,
		"agilex":     &ag.cfg,
	})
}

// The distributed compile tier, re-exported from internal/shard.
type (
	// ShardRouter is the distributed tier's front end: it
	// consistent-hashes cache keys across N reticle-serve backends,
	// health-checks them, re-hashes requests off dead peers, and fronts
	// the tier with an optional persistent disk cache. It serves the
	// same endpoints as a Server. cmd/reticle-shard is the standalone
	// daemon.
	ShardRouter = shard.Router
	// ShardOptions configures a ShardRouter (backend URLs, virtual-node
	// replicas, health-check interval, disk cache).
	ShardOptions = shard.Options
)

// NewShardRouter builds the shard router over the same two bundled
// family configs as NewServer, so router-computed cache keys agree
// with every backend's.
func NewShardRouter(opts ShardOptions) (*ShardRouter, error) {
	us, err := NewCompilerWith(Options{})
	if err != nil {
		return nil, err
	}
	ag, err := NewCompilerWith(Options{Target: agilex.Target(), Device: agilex.Device()})
	if err != nil {
		return nil, err
	}
	if opts.DefaultFamily == "" {
		opts.DefaultFamily = "ultrascale"
	}
	return shard.New(opts, map[string]*pipeline.Config{
		"ultrascale": &us.cfg,
		"agilex":     &ag.cfg,
	})
}

// BehavioralVerilog renders the §7 baseline translations: standard
// behavioral Verilog (hint=false) or directive-laden Verilog (hint=true).
func BehavioralVerilog(f *Func, hint bool) (string, error) {
	flavor := behav.Base
	if hint {
		flavor = behav.Hint
	}
	m, err := behav.Translate(f, flavor)
	if err != nil {
		return "", err
	}
	return m.String(), nil
}

// BaselineResult is a baseline-toolchain compile (see package vivado).
type BaselineResult = vivado.Result

// BaselineCompile runs the simulated traditional toolchain on the same
// program, as the §7 baselines do.
func BaselineCompile(f *Func, dev *Device, hint bool) (*BaselineResult, error) {
	if dev == nil {
		dev = ultrascale.Device()
	}
	return vivado.Compile(f, dev, vivado.Options{Hint: hint})
}

// ExpandAsm inlines an assembly program's TDL semantics back into IR, the
// reference meaning used for translation validation.
func ExpandAsm(f *AsmFunc, target *TargetDesc) (*Func, error) {
	return asm.Expand(f, target)
}

// Front-end passes (§8 of the paper), re-exported from internal/passes.

// Vectorize combines independent scalar instructions into vector
// instructions (§8.2, Fig. 16). It returns the rewritten function and the
// number of vector groups formed.
func Vectorize(f *Func, lanes int) (*Func, int, error) {
	out, st, err := passes.Vectorize(f, passes.VectorizeOptions{Lanes: lanes})
	return out, st.Groups, err
}

// Pipeline registers every pure compute result (§8.1, Fig. 14b),
// maximizing clock rate at the cost of latency. enable may name a bool
// value; empty inserts a constant-true enable.
func Pipeline(f *Func, enable string) (*Func, int, error) {
	return passes.Pipeline(f, passes.PipelineOptions{Enable: enable})
}

// BindPolicy chooses resources for compute instructions (§8.2, Fig. 17).
type BindPolicy = passes.BindPolicy

// Binding policies.
var (
	PreferDsp BindPolicy = passes.PreferDsp
	PreferLut BindPolicy = passes.PreferLut
	Unbind    BindPolicy = passes.Unbind
)

// Bind rewrites resource annotations under a policy.
func Bind(f *Func, policy BindPolicy) (*Func, error) { return passes.Bind(f, policy) }

// Optimize runs common-subexpression elimination and dead code elimination
// to a fixpoint — the standard front-end cleanup before compiling.
func Optimize(f *Func) (*Func, error) { return passes.Optimize(f) }

// DCE removes instructions that cannot reach an output; it returns the
// cleaned function and the number of instructions removed.
func DCE(f *Func) (*Func, int, error) { return passes.DCE(f) }

// CSE merges pure instructions computing identical values.
func CSE(f *Func) (*Func, int, error) { return passes.CSE(f) }

// Fold performs constant folding and strength reduction; multiplications
// by powers of two become free wire shifts (§4.1).
func Fold(f *Func) (*Func, int, error) { return passes.Fold(f) }

// InterpretAsm evaluates an assembly program over an input trace by
// expanding its TDL semantics back to IR first — co-simulation of compiled
// code against the reference interpreter.
func InterpretAsm(f *AsmFunc, target *TargetDesc, trace Trace) (Trace, error) {
	irf, err := asm.Expand(f, target)
	if err != nil {
		return nil, err
	}
	return interp.Run(irf, trace)
}
