package reticle

import (
	"context"
	"strings"
	"testing"

	"reticle/internal/bench"
	"reticle/internal/place"
)

// TestDegradedTensorDot exercises the headline degradation contract on a
// real workload: tensordot 5x36 with a one-step solver budget compiles
// on both bundled families, comes back Degraded with a step-budget
// reason, and the greedy fallback placement passes the satcheck oracle.
func TestDegradedTensorDot(t *testing.T) {
	cases := []struct {
		family string
		opts   Options
	}{
		{"ultrascale", Options{MaxSolverSteps: 1}},
		{"agilex", Options{Target: Agilex(), Device: AGF014(), MaxSolverSteps: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.family, func(t *testing.T) {
			f, err := bench.TensorDot(5, 36)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewCompilerWith(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			art, err := c.Compile(f)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if !art.Degraded {
				t.Fatal("artifact not marked Degraded under MaxSolverSteps: 1")
			}
			if !strings.Contains(art.DegradedReason, "step budget") {
				t.Errorf("DegradedReason = %q, want step-budget mention", art.DegradedReason)
			}
			if err := place.Verify(art.Asm, art.Placed, c.Device()); err != nil {
				t.Errorf("fallback placement fails satcheck: %v", err)
			}
			if art.Verilog == "" {
				t.Error("degraded artifact has no Verilog — codegen must still run")
			}
		})
	}
}

// TestDegradedNeverCached: a degraded artifact is served to the caller
// that paid for it but never replayed from cache, so the next identical
// request re-runs the pipeline.
func TestDegradedNeverCached(t *testing.T) {
	f, err := bench.TensorDot(5, 36)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompilerWith(Options{MaxSolverSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	ca := NewCompileCache(8)
	ctx := context.Background()

	art, hit, err := c.CompileCached(ctx, ca, f)
	if err != nil {
		t.Fatalf("first CompileCached: %v", err)
	}
	if hit {
		t.Fatal("first call reported a cache hit")
	}
	if !art.Degraded {
		t.Fatal("first artifact not Degraded")
	}

	_, hit, err = c.CompileCached(ctx, ca, f)
	if err != nil {
		t.Fatalf("second CompileCached: %v", err)
	}
	if hit {
		t.Error("degraded artifact was replayed from cache")
	}
	if got := ca.Stats().Computes; got != 2 {
		t.Errorf("Computes = %d, want 2 (degraded results must not be cached)", got)
	}
}

// TestHealthyResultCached is the control: a non-degraded compile of the
// same kernel caches normally.
func TestHealthyResultCached(t *testing.T) {
	f, err := bench.TensorDot(5, 36)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompiler()
	if err != nil {
		t.Fatal(err)
	}
	ca := NewCompileCache(8)
	ctx := context.Background()
	art, _, err := c.CompileCached(ctx, ca, f)
	if err != nil {
		t.Fatal(err)
	}
	if art.Degraded {
		t.Fatal("unbudgeted compile unexpectedly degraded")
	}
	_, hit, err := c.CompileCached(ctx, ca, f)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("healthy artifact missed the cache on the second call")
	}
}
